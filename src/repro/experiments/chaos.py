"""Chaos sweep: fault plans over scenarios, with invariant auditing.

``python -m repro.experiments --chaos`` runs each named
:class:`~repro.faults.FaultPlan` against each scenario app on the
centralized-FaaS platform, alongside a fault-free twin at the same seed,
and condenses every (scenario, plan) pair into one
:class:`~repro.faults.ResilienceReport` row: task conservation
(submitted = completed + lost), recovery actions and their latency
percentiles, makespan inflation against the twin, and the
:class:`~repro.faults.InvariantChecker`'s violation count — which a
healthy stack keeps at zero.

Everything is deterministic at a fixed seed: plans are pure data fired at
fixed instants, the injector draws no randomness, and the workload
streams are untouched by arming a plan.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..apps import app
from ..faults import FaultPlan, ResilienceReport, named_plan, plan_names
from ..platforms import SingleTierRunner, platform_config
from .common import ExperimentResult

__all__ = ["run", "run_pair", "DEFAULT_SCENARIOS"]

#: The scenario sweep the issue's acceptance criteria name (S1-S3).
DEFAULT_SCENARIOS = ("S1", "S2", "S3")
PLATFORM = "centralized_faas"


def run_pair(scenario: str, plan: FaultPlan, seed: int = 0,
             duration_s: Optional[float] = None,
             platform: str = PLATFORM) -> ResilienceReport:
    """One chaos run plus its fault-free twin; returns the report."""
    config = platform_config(platform)
    spec = app(scenario)

    def runner(fault_plan: Optional[FaultPlan]) -> "RunResult":
        return SingleTierRunner(config, spec, seed=seed,
                                duration_s=duration_s,
                                fault_plan=fault_plan).run()

    baseline = runner(None)
    chaotic = runner(plan)
    chaos = chaotic.extras["chaos"]
    invariants = chaos["invariants"]
    return ResilienceReport(
        scenario=scenario,
        plan=plan.name,
        submitted=invariants["submitted"],
        completed=invariants["completed"],
        lost=invariants["lost"],
        violations=invariants["violations"],
        violation_details=invariants["violation_details"],
        recoveries=chaos["recoveries"],
        recovery_latencies_s=chaos["recovery_latencies_s"],
        makespan_s=chaos["makespan_s"],
        baseline_makespan_s=baseline.duration_s,
        median_latency_s=chaotic.task_latencies.percentile(50),
        baseline_median_latency_s=baseline.task_latencies.percentile(50),
    )


def run(base_seed: int = 0,
        scenarios: Sequence[str] = DEFAULT_SCENARIOS,
        plans: Optional[Sequence[str]] = None,
        duration_s: Optional[float] = None) -> ExperimentResult:
    """The full sweep: every plan against every scenario."""
    plan_keys = list(plans) if plans else plan_names()
    reports: List[ResilienceReport] = []
    for scenario in scenarios:
        spec = app(scenario)
        horizon = (duration_s if duration_s is not None
                   else _default_duration(spec))
        for key in plan_keys:
            plan = named_plan(key, duration_s=horizon)
            reports.append(run_pair(scenario, plan, seed=base_seed,
                                    duration_s=duration_s))
    data: Dict[str, object] = {
        "reports": [report.to_dict() for report in reports],
        "total_violations": sum(r.violations for r in reports),
        "all_accounted": all(r.all_accounted for r in reports),
    }
    return ExperimentResult(
        figure="chaos",
        title="Resilience under injected faults "
              f"({PLATFORM}, seed {base_seed})",
        headers=ResilienceReport.headers(),
        rows=[report.row() for report in reports],
        data=data,
    )


def _default_duration(spec) -> float:
    """Plans scale to the run window the scenario will actually use."""
    from ..config import DEFAULT
    return DEFAULT.job_duration_s
