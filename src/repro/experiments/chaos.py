"""Chaos sweep: fault plans over scenarios, with invariant auditing.

``python -m repro.experiments --chaos`` runs each named
:class:`~repro.faults.FaultPlan` against each scenario app on the
centralized-FaaS platform, alongside a fault-free twin at the same seed,
and condenses every (scenario, plan) pair into one
:class:`~repro.faults.ResilienceReport` row: task conservation
(submitted = completed + lost), recovery actions and their latency
percentiles, makespan inflation against the twin, and the
:class:`~repro.faults.InvariantChecker`'s violation count — which a
healthy stack keeps at zero.

``python -m repro.experiments --chaos-workers`` is the second tier of
chaos: instead of simulated faults inside the model, it SIGKILLs, hangs,
and stalls the *real worker processes* behind the sharded runtime
(:mod:`repro.sim.shard`) mid-run, then asserts the supervised recovery
path (:mod:`repro.sim.supervisor`) merged rows byte-identical to an
undisturbed twin. One lane per scale-out topology: edge-sharded,
cloud-sharded, and hybrid exact/mean-field.

Everything is deterministic at a fixed seed: plans are pure data fired at
fixed instants, the injector draws no randomness, and the workload
streams are untouched by arming a plan. Worker chaos perturbs only
wall-clock and process accounting — never the merged rows.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from ..apps import app
from ..faults import (FaultPlan, ResilienceReport, WorkerFaultPlan,
                      named_plan, plan_names)
from ..platforms import SingleTierRunner, platform_config
from ..sim import supervisor
from ..sim.shard import run_sharded
from .common import ExperimentResult

__all__ = ["run", "run_pair", "run_workers", "run_worker_lane",
           "DEFAULT_SCENARIOS", "WORKER_LANES", "DEFAULT_WORKER_FAULTS"]

#: The scenario sweep the issue's acceptance criteria name (S1-S3).
DEFAULT_SCENARIOS = ("S1", "S2", "S3")
PLATFORM = "centralized_faas"


def run_pair(scenario: str, plan: FaultPlan, seed: int = 0,
             duration_s: Optional[float] = None,
             platform: str = PLATFORM) -> ResilienceReport:
    """One chaos run plus its fault-free twin; returns the report."""
    config = platform_config(platform)
    spec = app(scenario)

    def runner(fault_plan: Optional[FaultPlan]) -> "RunResult":
        return SingleTierRunner(config, spec, seed=seed,
                                duration_s=duration_s,
                                fault_plan=fault_plan).run()

    baseline = runner(None)
    chaotic = runner(plan)
    chaos = chaotic.extras["chaos"]
    invariants = chaos["invariants"]
    return ResilienceReport(
        scenario=scenario,
        plan=plan.name,
        submitted=invariants["submitted"],
        completed=invariants["completed"],
        lost=invariants["lost"],
        violations=invariants["violations"],
        violation_details=invariants["violation_details"],
        recoveries=chaos["recoveries"],
        recovery_latencies_s=chaos["recovery_latencies_s"],
        makespan_s=chaos["makespan_s"],
        baseline_makespan_s=baseline.duration_s,
        median_latency_s=chaotic.task_latencies.percentile(50),
        baseline_median_latency_s=baseline.task_latencies.percentile(50),
    )


def run(base_seed: int = 0,
        scenarios: Sequence[str] = DEFAULT_SCENARIOS,
        plans: Optional[Sequence[str]] = None,
        duration_s: Optional[float] = None) -> ExperimentResult:
    """The full sweep: every plan against every scenario."""
    plan_keys = list(plans) if plans else plan_names()
    reports: List[ResilienceReport] = []
    for scenario in scenarios:
        spec = app(scenario)
        horizon = (duration_s if duration_s is not None
                   else _default_duration(spec))
        for key in plan_keys:
            plan = named_plan(key, duration_s=horizon)
            reports.append(run_pair(scenario, plan, seed=base_seed,
                                    duration_s=duration_s))
    data: Dict[str, object] = {
        "reports": [report.to_dict() for report in reports],
        "total_violations": sum(r.violations for r in reports),
        "all_accounted": all(r.all_accounted for r in reports),
    }
    return ExperimentResult(
        figure="chaos",
        title="Resilience under injected faults "
              f"({PLATFORM}, seed {base_seed})",
        headers=ResilienceReport.headers(),
        rows=[report.row() for report in reports],
        data=data,
    )


def _default_duration(spec) -> float:
    """Plans scale to the run window the scenario will actually use."""
    from ..config import DEFAULT
    return DEFAULT.job_duration_s


# --------------------------------------------------------------------------
# Worker chaos: real processes killed/hung/stalled under supervision.
# --------------------------------------------------------------------------

#: Scale-out topologies the acceptance criteria name, smallest shapes
#: that still exercise every worker kind (16 devices, 4-device cells).
WORKER_LANES: Dict[str, Dict[str, object]] = {
    "sharded": {"shards": 2},
    "cloud_sharded": {"shards": 2, "cloud_shards": 2,
                      "region_devices": 8},
    "hybrid": {"shards": 2, "cloud_shards": 1, "region_devices": 8,
               "exact_devices": 8},
    # Open-loop background tenants riding the sharded cloud tier while
    # its workers are killed: shed/scale decisions must replay
    # byte-identically through supervised recovery.
    "serving": {"shards": 2, "cloud_shards": 2, "region_devices": 8,
                "serving": "poisson:30,onoff:10:flash"},
}

#: Default fault scripts per lane (``action:scope:worker:op``). The
#: 120 s mission over a 10 s window gives each worker ~13 pipe ops, so
#: ops 2-4 always exist; faults cover both a SIGKILL and a hang on the
#: edge tier plus a kill on a cloud worker where one runs.
DEFAULT_WORKER_FAULTS: Dict[str, str] = {
    "sharded": "kill:shard:0:2,hang:shard:1:3",
    "cloud_sharded": "kill:shard:0:2,kill:cloud:0:2",
    "hybrid": "kill:shard:0:2",
    "serving": "kill:cloud:0:2",
}

WORKER_N_DEVICES = 16
WORKER_CELL_DEVICES = 4
WORKER_WINDOW_S = 10.0
#: Hang-detection deadline for chaos runs. The production default
#: (max(60 s, window)) would make every injected hang cost a minute of
#: wall-clock; chaos runs only need the deadline to exceed one honest
#: barrier step, which takes well under a second at this scale.
WORKER_CHAOS_DEADLINE_S = 2.0


def _worker_scenario(app_key: str):
    """SCENARIO_A's flight/field shell around one suite recognition app
    (the same composition the shard determinism tests pin)."""
    from ..apps import SCENARIO_A
    from ..apps.suite import SUITE
    return dataclasses.replace(
        SCENARIO_A, key=f"ScA-{app_key}", recognition=SUITE[app_key])


def _result_bytes(result) -> Tuple:
    """Every row-observable field, exactly — deliberately excluding the
    supervision extras (incidents are wall-clock accounting, not rows)."""
    return (
        tuple(result.task_latencies.values),
        tuple(result.task_latencies.times),
        result.extras["makespan_s"],
        result.duration_s,
        tuple(result.wireless_meter.events),
        result.extras["targets"],
        result.extras["cloud_completions"],
        # Serving-armed lanes: the shed/scale ledgers and background
        # latency percentiles must also survive recovery bit-for-bit
        # (absent — empty string — on the serving-free lanes).
        str(result.extras.get("serving", "")),
    )


def run_worker_lane(app_key: str, lane: str, seed: int = 0,
                    faults: Optional[str] = None,
                    deadline_s: float = WORKER_CHAOS_DEADLINE_S) -> Dict:
    """One lane: an undisturbed twin, then the same run with real worker
    processes killed/hung mid-flight; returns the comparison record."""
    shape = WORKER_LANES[lane]
    spec = faults if faults is not None else DEFAULT_WORKER_FAULTS[lane]
    plan = WorkerFaultPlan.parse(spec)
    scenario = _worker_scenario(app_key)
    config = platform_config("hivemind")

    def lane_run(worker_faults: WorkerFaultPlan):
        return run_sharded(config, scenario, WORKER_N_DEVICES, seed=seed,
                           cell_devices=WORKER_CELL_DEVICES,
                           window_s=WORKER_WINDOW_S,
                           worker_faults=worker_faults,
                           worker_deadline_s=deadline_s, **shape)

    # The twin passes an explicit *unarmed* plan so an inherited
    # REPRO_CHAOS_WORKERS cannot arm it behind our back.
    baseline = lane_run(WorkerFaultPlan())
    mark = supervisor.incident_count()
    chaotic = lane_run(plan)
    incidents = supervisor.incidents_since(mark)
    identical = _result_bytes(baseline) == _result_bytes(chaotic)
    recoveries = [incident.recovery for incident in incidents]
    return {
        "scenario": app_key,
        "lane": lane,
        "faults": plan.spec(),
        "incidents": [incident.to_dict() for incident in incidents],
        "injected": len(plan),
        "recovered": len(incidents),
        "respawns": recoveries.count("respawned"),
        "fallbacks": recoveries.count("in_process"),
        "max_recovery_s": round(max(
            (incident.recovery_s for incident in incidents),
            default=0.0), 6),
        "identical": identical,
    }


def run_workers(base_seed: int = 0,
                scenarios: Sequence[str] = ("S1",),
                lanes: Optional[Sequence[str]] = None,
                faults: Optional[str] = None,
                deadline_s: float = WORKER_CHAOS_DEADLINE_S,
                ) -> ExperimentResult:
    """The worker-chaos sweep: each lane per scenario, twin-compared.

    Skips cleanly (``data["skipped"]``) where worker processes cannot be
    spawned at all — there is no real process to kill there, and the
    supervised runtime already degrades to in-process execution.
    """
    lane_keys = list(lanes) if lanes else list(WORKER_LANES)
    unknown = [key for key in lane_keys if key not in WORKER_LANES]
    if unknown:
        raise KeyError(
            f"unknown worker-chaos lane(s) {unknown}; "
            f"valid: {sorted(WORKER_LANES)}")
    skipped = not supervisor.can_spawn_workers()
    records: List[Dict] = []
    if not skipped:
        for app_key in scenarios:
            for lane in lane_keys:
                records.append(run_worker_lane(
                    app_key, lane, seed=base_seed, faults=faults,
                    deadline_s=deadline_s))
    rows = [[record["scenario"], record["lane"], record["faults"],
             record["injected"], record["recovered"],
             record["respawns"], record["fallbacks"],
             record["max_recovery_s"],
             "yes" if record["identical"] else "NO"]
            for record in records]
    data: Dict[str, object] = {
        "records": records,
        "skipped": skipped,
        "identical_all": all(r["identical"] for r in records),
        "all_recovered": all(r["recovered"] >= 1 for r in records),
        "total_incidents": sum(r["recovered"] for r in records),
        "incidents": [incident for record in records
                      for incident in record["incidents"]],
    }
    title = ("Worker chaos: supervised recovery under real process "
             f"kills/hangs (seed {base_seed})")
    if skipped:
        title += " [SKIPPED: no process support]"
    return ExperimentResult(
        figure="chaos-workers",
        title=title,
        headers=["scenario", "lane", "faults", "injected", "recovered",
                 "respawns", "fallbacks", "max_recovery_s", "identical"],
        rows=rows,
        data=data,
    )
