"""Whole-run closed-form sweep: price a (app, platform, N) grid without
stepping the kernel.

PR 2 replaced per-tick flight stepping with analytic legs; PR 3 replaced
queue polling with virtual-clock grants. This module goes one step
further for capacity-planning questions ("where does the centralized
platform saturate as the swarm grows?"): it composes the calibrated
closed forms of :mod:`repro.analytical.queueing` with the fixed-cost
model the fig18 validation already established, producing fig17-style
saturation rows for the full grid in microseconds instead of
core-hours. No kernel is constructed — ``sim_events`` for a sweep run
is 0 by design.

The estimator is the fig18 predictor (validated against exact
simulation to <5% tail deviation at the pinned low-utilization point)
plus N-dependent contention terms:

- **Shared uplink** — per-AP utilization from the actual offered load
  (devices per AP stays roughly constant as :meth:`~repro.config.
  PaperConstants.scaled_for_swarm` adds access points, so this term
  bounds but does not drive the knee); mean wait uses the M/D/1 form,
  the tail inherits fig18's calibrated ``1.6 * rho`` term inflated by
  ``mm1_inflation``.
- **Fixed backend cluster** — the paper scales the swarm while holding
  the cluster at 12x40 cores, which is exactly what exposes centralized
  saturation (section 5.6); we charge :func:`~repro.analytical.queueing.
  mmc_wait_time` for the aggregate task stream, capped so infeasible
  points stay finite and comparable.
- **On-board cores** — for edge execution, an M/M/1-style wait on the
  device's own cores.

Tail waits scale the mean wait by ``ln(100)`` (the p99/mean ratio of an
exponential wait), a deliberate heuristic: beyond the knee the capped
M/M/c term dominates every percentile anyway.

``validate`` cross-checks the estimator against *exact* simulation at
small N (the fig18 recipe: pinned periodic arrivals, warm containers,
steady-state filter) with a tolerance band wide enough for CI — this is
the guard that keeps the closed forms honest as the simulator evolves.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..analytical import mm1_inflation, mmc_wait_time
from ..apps import AppSpec, all_apps
from ..config import DEFAULT
from ..platforms import SingleTierRunner, platform_config
from .common import ExperimentResult
from .fig18_validation import (EDGE_JITTER_SIGMA, PLATFORMS, TARGET_RHO,
                               _hivemind_tier, _predict, _predict_edge,
                               _validation_rate)

__all__ = ["predict", "run", "validate", "DEFAULT_SIZES"]

#: Swarm sizes priced by the default grid (the paper sweeps to 8k).
DEFAULT_SIZES: Sequence[int] = (16, 64, 256, 1024, 4096)

#: p99/mean ratio of an exponentially distributed wait.
_TAIL_FACTOR = math.log(100.0)

#: Cap on any single contention term, in multiples of the service time —
#: mirrors :func:`~repro.analytical.queueing.mm1_inflation`'s cap so
#: saturated cells chart as "off the cliff" rather than infinity.
_WAIT_CAP = 50.0


def _capped_wait(wait: float, service_s: float) -> float:
    limit = _WAIT_CAP * max(service_s, 1e-9)
    return wait if wait < limit else limit


def predict(app: AppSpec, platform: str, n_devices: int,
            rate_hz: Optional[float] = None) -> Dict[str, float]:
    """Closed-form latency/bandwidth estimate for one grid cell.

    Returns median/p99 end-to-end task latency (seconds), the mean
    aggregate wireless bandwidth (MB/s), and the two utilization figures
    that explain the shape (``uplink_rho``, ``cluster_rho``).
    """
    if n_devices <= 0:
        raise ValueError("n_devices must be positive")
    constants = DEFAULT.scaled_for_swarm(n_devices)
    wireless = constants.wireless
    rate = rate_hz if rate_hz is not None else _validation_rate(app, platform)
    devices_per_ap = n_devices / wireless.access_points

    edge_tier = (platform == "distributed_edge" or
                 (platform == "hivemind" and _hivemind_tier(app) == "edge"))
    accelerated = platform == "hivemind"

    # Base fixed-cost model at the validated operating point (N=16 shape).
    if edge_tier:
        median, p99 = _predict_edge(app, accelerated=accelerated)
    else:
        median, p99 = _predict(app, platform)

    # What actually crosses the air per task.
    if edge_tier:
        upload_mb = app.output_mb  # results push upstream
        download_mb = 0.0
    else:
        upload_mb = app.input_mb
        if accelerated and app.edge_filter_keep < 1.0:
            upload_mb = min(app.input_mb * app.edge_filter_keep, 8.0)
        download_mb = app.output_mb if app.response_to_device else 0.0
    ap_mbs = wireless.ap_mbs
    if accelerated:
        ap_mbs = (wireless.ap_mbps / 8.0 *
                  constants.accel.mac_efficiency_accel)

    # Shared-uplink contention (per access point). The fig18 baseline
    # already prices the validation operating point (its calibrated
    # ``1.6 * TARGET_RHO`` tail term), so only the *excess* over that
    # point is charged here — at small N the sweep therefore reproduces
    # the validated predictor exactly.
    serialization = upload_mb / ap_mbs
    uplink_rho = devices_per_ap * rate * serialization

    def _md1_wait(rho: float) -> float:
        if rho >= 1.0:
            return float("inf")
        return serialization * rho / (2.0 * (1.0 - rho))

    uplink_wait = _capped_wait(
        max(0.0, _md1_wait(uplink_rho) - _md1_wait(TARGET_RHO)),
        serialization)
    uplink_tail = _capped_wait(
        max(0.0, 1.6 * serialization *
            (uplink_rho * mm1_inflation(uplink_rho) - TARGET_RHO)),
        serialization)

    # Execution-tier contention.
    if edge_tier:
        # Each device feeds its own cores with strictly periodic
        # arrivals, so the wait follows Kingman's G/G/1 form with zero
        # arrival variability — near-zero below the knee (which exact
        # simulation confirms), exploding as rho -> 1.
        service_s = app.cloud_service_s * app.edge_slowdown
        cores = max(1, constants.drone.cpu_cores)
        exec_rho = rate * service_s / cores
        sigma = math.sqrt(app.service_sigma ** 2 + EDGE_JITTER_SIGMA ** 2)
        cs2 = math.exp(sigma * sigma) - 1.0
        exec_wait = _capped_wait(
            service_s * exec_rho * cs2 / (2.0 * (1.0 - exec_rho))
            if exec_rho < 1.0 else float("inf"), service_s)
        cluster_rho = 0.0
    else:
        # Superposed periodic streams from N devices approach Poisson,
        # so the fixed 480-core backend is priced as M/M/c — this is the
        # term that bends the centralized curves as the swarm grows.
        service_s = app.cloud_service_s
        cores = constants.cluster.servers * constants.cluster.cores_per_server
        arrival_hz = n_devices * rate
        cluster_rho = arrival_hz * service_s / cores
        exec_rho = cluster_rho
        exec_wait = _capped_wait(
            mmc_wait_time(cores, arrival_hz, service_s), service_s)

    mean_wait = uplink_wait + exec_wait
    tail_wait = uplink_tail + mean_wait * _TAIL_FACTOR
    bw_mbs = n_devices * rate * (upload_mb + download_mb)
    return {
        "median_s": median + mean_wait,
        "p99_s": p99 + tail_wait,
        "bw_mbs": bw_mbs,
        "uplink_rho": uplink_rho,
        "cluster_rho": cluster_rho,
        "exec_rho": exec_rho,
        "rate_hz": rate,
    }


def run(sizes: Sequence[int] = DEFAULT_SIZES,
        apps: Optional[Iterable[AppSpec]] = None,
        platforms: Sequence[str] = PLATFORMS,
        base_seed: int = 0) -> ExperimentResult:
    """Price the whole (app, platform, N) grid analytically.

    ``base_seed`` is accepted for registry-interface uniformity; the
    closed forms are deterministic and draw nothing.
    """
    del base_seed
    rows: List[List] = []
    data: Dict[str, Dict] = {}
    for spec in (apps if apps is not None else all_apps()):
        for platform in platforms:
            for n_devices in sizes:
                # Natural per-device rate: the saturation question is
                # "where does the platform collapse under the app's real
                # load", not the pinned low-rho validation point.
                cell = predict(spec, platform, n_devices,
                               rate_hz=spec.rate_hz)
                key = f"{spec.key}:{platform}:{n_devices}"
                rows.append([
                    key, n_devices, round(cell["bw_mbs"], 1),
                    round(cell["median_s"], 4), round(cell["p99_s"], 4),
                    round(cell["cluster_rho"], 3),
                ])
                data[key] = cell
    return ExperimentResult(
        figure="sweep",
        title="Closed-form (app, platform, N) saturation sweep",
        headers=["key", "devices", "bw_mbs", "task_median_s",
                 "task_p99_s", "cluster_rho"],
        rows=rows,
        data=data,
    )


def validate(app_keys: Sequence[str] = ("S1", "S4"),
             platforms: Sequence[str] = PLATFORMS,
             n_devices: int = 16,
             base_seed: int = 0,
             min_samples: int = 1200,
             tolerance_pct: float = 25.0) -> ExperimentResult:
    """Cross-check the sweep estimator against exact simulation.

    Runs the fig18 recipe (pinned periodic rate, warm containers,
    steady-state filter) at small N and asserts the analytic p99 lands
    within ``tolerance_pct`` of the simulated p99. The band is wider
    than fig18's 5% because the sweep adds heuristic contention terms
    on top of the validated fixed-cost model; it is the regression
    guard, not a precision claim.
    """
    by_key = {spec.key: spec for spec in all_apps()}
    rows: List[List] = []
    data: Dict[str, Dict] = {}
    worst = 0.0
    for key in app_keys:
        spec = by_key[key]
        for platform in platforms:
            rate = _validation_rate(spec, platform)
            duration_s = min(3000.0, max(120.0,
                                         min_samples / (rate * n_devices)))
            result = SingleTierRunner(
                platform_config(platform), spec, seed=base_seed,
                duration_s=duration_s, n_devices=n_devices,
                rate_override=rate, bursty=False,
                keepalive_s=3600.0).run()
            series = result.task_latencies
            steady = series.values[series.times > 60.0]
            sim_tail = float(np.percentile(steady, 99, method="linear"))
            cell = predict(spec, platform, n_devices, rate_hz=rate)
            dev_pct = 100.0 * (sim_tail - cell["p99_s"]) / cell["p99_s"]
            worst = max(worst, abs(dev_pct))
            cell_key = f"{key}:{platform}:{n_devices}"
            rows.append([cell_key, round(sim_tail * 1000, 1),
                         round(cell["p99_s"] * 1000, 1),
                         round(dev_pct, 2),
                         abs(dev_pct) <= tolerance_pct])
            data[cell_key] = {
                "sim_p99_s": sim_tail,
                "analytic_p99_s": cell["p99_s"],
                "deviation_pct": dev_pct,
            }
    data["max_abs_deviation_pct"] = worst
    data["tolerance_pct"] = tolerance_pct
    data["all_within_tolerance"] = worst <= tolerance_pct
    return ExperimentResult(
        figure="sweep_validate",
        title="Closed-form sweep vs exact simulation (small N)",
        headers=["key", "sim_p99_ms", "analytic_p99_ms", "dev_pct",
                 "within_tolerance"],
        rows=rows,
        data=data,
    )
