"""Fig 16: HiveMind on the robotic-car swarm (treasure hunt + maze).

Expected shape: HiveMind delivers the best and most predictable job
latency on both scenarios; the distributed configuration is the slowest
(the Pi still loses to the cloud on OCR-class work); battery consumption
follows the same order, with smaller spreads than the drone swarm since
cars are far less power-constrained.
"""

from __future__ import annotations

from typing import Dict, List

from ..apps import CAR_MAZE, TREASURE_HUNT
from ..platforms import CarScenarioRunner, platform_config
from .common import ExperimentResult

PLATFORMS = ("centralized_faas", "distributed_edge", "hivemind")


def run(base_seed: int = 0) -> ExperimentResult:
    rows: List[List] = []
    data: Dict[str, Dict] = {}
    for scenario in (TREASURE_HUNT, CAR_MAZE):
        for platform in PLATFORMS:
            result = CarScenarioRunner(
                platform_config(platform), scenario, seed=base_seed).run()
            jobs = result.extras["job_latencies"]
            battery_mean, battery_worst = result.battery_summary()
            key = f"{scenario.key}:{platform}"
            rows.append([key, round(jobs.median, 1), round(jobs.p99, 1),
                         round(battery_mean, 2), round(battery_worst, 2)])
            data[key] = {
                "job_median_s": jobs.median,
                "job_p99_s": jobs.p99,
                "battery_mean_pct": battery_mean,
                "battery_worst_pct": battery_worst,
                "phase_median_s": result.task_latencies.median,
            }
    return ExperimentResult(
        figure="fig16",
        title="Robotic cars: job latency (s) and battery (%)",
        headers=["key", "job_median_s", "job_p99_s", "battery_mean_pct",
                 "battery_worst_pct"],
        rows=rows,
        data=data,
    )
