"""HiveMind (ISCA 2022) reproduction: serverless edge-swarm coordination.

Public API map:

- :mod:`repro.dsl` — task-graph DSL, directives, program synthesis,
  API codegen, the compiler.
- :mod:`repro.platforms` — the systems under test and mission runners
  (the top-level entry point for most users).
- :mod:`repro.core` — the HiveMind controller and its subsystems.
- :mod:`repro.serverless` — the OpenWhisk-style platform emulation.
- :mod:`repro.edge`, :mod:`repro.routing`, :mod:`repro.learning`,
  :mod:`repro.network`, :mod:`repro.cluster`, :mod:`repro.hardware`
  — the substrates.
- :mod:`repro.experiments` — one harness per paper figure
  (``python -m repro.experiments --list``).

Quick taste::

    from repro.apps import SCENARIO_A
    from repro.platforms import ScenarioRunner, platform_config

    result = ScenarioRunner(platform_config("hivemind"), SCENARIO_A,
                            seed=42).run()
    print(result.extras["makespan_s"], result.battery_summary())
"""

from .config import DEFAULT, PaperConstants

__version__ = "1.0.0"

__all__ = ["DEFAULT", "PaperConstants", "__version__"]
