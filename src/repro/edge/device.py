"""Edge device base: CPU, battery, radio accounting, liveness.

Both drones and robotic cars share this structure; the constants differ
(:class:`~repro.config.DroneConstants` vs :class:`~repro.config.
CarConstants`). Energy use is attributed to the paper's categories —
motion, on-board compute, radio TX/RX, idle — which is what Figs 1/14a/16b
aggregate.
"""

from __future__ import annotations

import heapq
from typing import Callable, Generator, List, Optional, Tuple

import numpy as np

from ..sim import Environment, Resource
from ..sim.flags import analytic_net_enabled
from ..telemetry import EnergyAccount

__all__ = ["EdgeDevice"]

Point = Tuple[float, float]


class EdgeDevice:
    """One battery-powered swarm member."""

    def __init__(self, env: Environment, device_id: str, *,
                 cpu_cores: int, battery_wh: float, motion_power_w: float,
                 compute_power_w: float, compute_idle_w: float,
                 radio_tx_w: float, radio_rx_w: float, radio_idle_w: float,
                 cloud_to_edge_slowdown: float,
                 rng: Optional[np.random.Generator] = None,
                 strict_battery: bool = False,
                 analytic: Optional[bool] = None):
        if cpu_cores <= 0:
            raise ValueError("device needs at least one core")
        if cloud_to_edge_slowdown <= 0:
            raise ValueError("slowdown factor must be positive")
        self.env = env
        self.device_id = device_id
        #: On-board CPU contention runs analytically by default: a
        #: ``cpu_cores``-entry min-heap of core-free times yields each
        #: task's start instant in O(log cores) and one ``timeout_at``
        #: replaces the legacy request/grant/timeout/release machinery.
        #: Exact because the service time is drawn *before* the core
        #: claim and FIFO multi-server grant order equals arrival order
        #: (same argument as the CouchDB store — see DESIGN.md,
        #: "Virtual-clock queueing"). ``REPRO_ANALYTIC_NET=0`` /
        #: ``analytic=False`` restores the legacy ``Resource`` path.
        self.analytic = analytic_net_enabled(analytic)
        if self.analytic:
            self._core_free: List[float] = [0.0] * cpu_cores
        else:
            self.cores = Resource(env, capacity=cpu_cores)
        self.energy = EnergyAccount(battery_wh, device=device_id,
                                    strict=strict_battery)
        self.motion_power_w = motion_power_w
        self.compute_power_w = compute_power_w
        self.compute_idle_w = compute_idle_w
        self.radio_tx_w = radio_tx_w
        self.radio_rx_w = radio_rx_w
        self.radio_idle_w = radio_idle_w
        self.slowdown = cloud_to_edge_slowdown
        self._rng = rng
        self.position: Point = (0.0, 0.0)
        self.alive = True
        #: Invoked synchronously by :meth:`fail` — the vectorized engine
        #: hangs an analytic-leg truncation here while a leg is in flight.
        self._fail_hook: Optional[Callable[[], None]] = None
        # Activity accounting for the lazy idle-draw settlement.
        self.busy_compute_s = 0.0
        self.radio_active_s = 0.0
        self.motion_s = 0.0
        self._mission_start: Optional[float] = None

    # -- lifecycle ------------------------------------------------------------
    def start_mission(self) -> None:
        self._mission_start = self.env.now

    def fail(self) -> None:
        """Device failure (crash, dead battery, lost link)."""
        self.alive = False
        hook = self._fail_hook
        if hook is not None:
            hook()

    def finalize_mission(self, end_time: Optional[float] = None) -> float:
        """Settle idle energy draws for the mission window; returns span.

        Charged lazily (rather than with per-second ticks) so that
        thousand-device simulations stay cheap: idle compute and idle radio
        power apply to whatever part of the mission the device was not busy.
        """
        if self._mission_start is None:
            raise RuntimeError(f"{self.device_id}: mission never started")
        end = end_time if end_time is not None else self.env.now
        span = max(0.0, end - self._mission_start)
        compute_idle_s = max(0.0, span - self.busy_compute_s)
        radio_idle_s = max(0.0, span - self.radio_active_s)
        self.energy.draw_power("idle",
                               self.compute_idle_w, compute_idle_s)
        self.energy.draw_power("idle", self.radio_idle_w, radio_idle_s)
        self._mission_start = None
        return span

    # -- compute ------------------------------------------------------------
    def edge_service_time(self, cloud_service_s: float,
                          slowdown: Optional[float] = None) -> float:
        """On-board duration of work that takes ``cloud_service_s`` on one
        cloud core, including mild device-side jitter (thermal throttling,
        background OS activity). ``slowdown`` overrides the device default
        for per-application slowdowns (a CNN suffers more than an SVM)."""
        base = cloud_service_s * (slowdown if slowdown is not None
                                  else self.slowdown)
        if self._rng is None:
            return base
        return base * float(self._rng.lognormal(0.0, 0.18))

    def execute(self, cloud_service_s: float,
                slowdown: Optional[float] = None) -> Generator:
        """Process: run a task on-board; returns the edge seconds spent."""
        if cloud_service_s < 0:
            raise ValueError("service time must be non-negative")
        service = self.edge_service_time(cloud_service_s, slowdown)
        if self.analytic:
            free_at = heapq.heappop(self._core_free)
            start = free_at if free_at > self.env.now else self.env.now
            end = start + service
            heapq.heappush(self._core_free, end)
            yield self.env.timeout_at(end)
        else:
            with self.cores.request() as grant:
                yield grant
                yield self.env.timeout(service)
        if self.alive:
            # A device that failed mid-service produced nothing; charging
            # its battery (and its busy-compute ledger) for the aborted
            # work would double-bill the post-mortem idle settlement.
            self.busy_compute_s += service
            self.energy.draw_power(
                "compute", self.compute_power_w - self.compute_idle_w,
                service)
        return service

    # -- radio ------------------------------------------------------------
    def account_tx(self, airtime_s: float) -> None:
        """Charge transmit energy for ``airtime_s`` on the air."""
        if airtime_s < 0:
            raise ValueError("airtime must be non-negative")
        self.radio_active_s += airtime_s
        self.energy.draw_power("radio_tx",
                               self.radio_tx_w - self.radio_idle_w,
                               airtime_s)

    def account_rx(self, airtime_s: float) -> None:
        if airtime_s < 0:
            raise ValueError("airtime must be non-negative")
        self.radio_active_s += airtime_s
        self.energy.draw_power("radio_rx",
                               self.radio_rx_w - self.radio_idle_w,
                               airtime_s)

    # -- motion ------------------------------------------------------------
    def account_motion(self, seconds: float) -> None:
        """Charge motion power for ``seconds`` of movement."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        self.motion_s += seconds
        self.energy.draw_power("motion", self.motion_power_w, seconds)

    def __repr__(self) -> str:
        state = "alive" if self.alive else "failed"
        return f"<EdgeDevice {self.device_id} {state}>"
