"""Robotic car model (Yahboom Raspberry Pi cars, section 5.5).

Cars drive on a grid (maze corridors or instruction panels), one cell per
move, with a front camera for text/obstacle recognition. Less
power-constrained than drones: larger battery, lower motion draw, and a
4-core Pi, which is why obstacle avoidance and sensor analytics almost
always run on-board for them.
"""

from __future__ import annotations

from typing import Generator, Optional, Tuple

import numpy as np

from ..config import CarConstants
from ..sim import Environment
from .device import EdgeDevice
from .sensors import SensorSuite

__all__ = ["RoboticCar"]


class RoboticCar(EdgeDevice):
    """A terrestrial swarm member."""

    #: Size of one front-camera still used for text recognition (MB).
    PHOTO_MB = 3.0
    #: Grid cell edge length in meters (corridor spacing).
    CELL_M = 1.5

    def __init__(self, env: Environment, device_id: str,
                 constants: CarConstants,
                 rng: Optional[np.random.Generator] = None,
                 strict_battery: bool = False):
        super().__init__(
            env, device_id,
            cpu_cores=constants.cpu_cores,
            battery_wh=constants.battery_wh,
            motion_power_w=constants.motion_power_w,
            compute_power_w=constants.compute_power_w,
            compute_idle_w=constants.compute_idle_w,
            radio_tx_w=constants.radio_tx_w,
            radio_rx_w=constants.radio_rx_w,
            radio_idle_w=constants.radio_idle_w,
            cloud_to_edge_slowdown=constants.cloud_to_edge_slowdown,
            rng=rng, strict_battery=strict_battery)
        self.constants = constants
        self.speed_mps = constants.speed_mps
        self.sensors = SensorSuite(rng) if rng is not None else None
        self.cell: Tuple[int, int] = (0, 0)

    def drive_to_cell(self, cell: Tuple[int, int]) -> Generator:
        """Process: drive to an adjacent grid cell; returns seconds."""
        dx = abs(cell[0] - self.cell[0])
        dy = abs(cell[1] - self.cell[1])
        if dx + dy != 1:
            raise ValueError(
                f"cell {cell} is not adjacent to {self.cell}")
        travel_s = self.CELL_M / self.speed_mps
        yield self.env.timeout(travel_s)
        self.account_motion(travel_s)
        self.cell = cell
        self.position = (cell[0] * self.CELL_M, cell[1] * self.CELL_M)
        return travel_s

    def turn(self) -> Generator:
        """Process: rotate in place (cheap but not free)."""
        yield self.env.timeout(self.constants.turn_time_s)
        self.account_motion(self.constants.turn_time_s)

    def photograph(self) -> float:
        """Take one front-camera still; returns its size in MB."""
        return self.PHOTO_MB
