"""The 2-D world the swarm operates over.

Holds the stationary items of Scenario A (tennis balls on a baseball field)
and the moving people of Scenario B (random-waypoint walkers). The camera
model queries visibility against this world, which is what makes detection
counts and deduplication pressure (the same person photographed by several
drones) emerge from the simulation rather than being scripted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

__all__ = ["FieldWorld", "Person"]

Point = Tuple[float, float]


@dataclass
class Person:
    """A walker with a current position and waypoint."""

    person_id: int
    position: Point
    waypoint: Point
    speed_mps: float = 1.2


class FieldWorld:
    """A rectangle with stationary items and moving people."""

    def __init__(self, width_m: float, height_m: float,
                 rng: np.random.Generator):
        if width_m <= 0 or height_m <= 0:
            raise ValueError("field dimensions must be positive")
        self.width_m = width_m
        self.height_m = height_m
        self._rng = rng
        self.items: Dict[int, Point] = {}
        self.people: Dict[int, Person] = {}
        self._clock = 0.0

    def _random_point(self) -> Point:
        return (float(self._rng.uniform(0, self.width_m)),
                float(self._rng.uniform(0, self.height_m)))

    def place_items(self, count: int) -> None:
        """Scatter ``count`` stationary items uniformly (Scenario A)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        start = len(self.items)
        for index in range(start, start + count):
            self.items[index] = self._random_point()

    def place_people(self, count: int, speed_mps: float = 1.2) -> None:
        """Scatter ``count`` walkers uniformly (Scenario B)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        start = len(self.people)
        for index in range(start, start + count):
            self.people[index] = Person(
                person_id=index,
                position=self._random_point(),
                waypoint=self._random_point(),
                speed_mps=speed_mps,
            )

    def advance(self, to_time: float) -> None:
        """Move every person forward to simulation time ``to_time``."""
        dt = to_time - self._clock
        if dt < 0:
            raise ValueError("world time cannot run backwards")
        if dt == 0:
            return
        self._clock = to_time
        for person in self.people.values():
            remaining = dt * person.speed_mps
            while remaining > 0:
                dx = person.waypoint[0] - person.position[0]
                dy = person.waypoint[1] - person.position[1]
                distance = math.hypot(dx, dy)
                if distance <= remaining:
                    person.position = person.waypoint
                    person.waypoint = self._random_point()
                    remaining -= distance
                    if distance == 0:
                        break
                else:
                    fraction = remaining / distance
                    person.position = (
                        person.position[0] + fraction * dx,
                        person.position[1] + fraction * dy)
                    remaining = 0.0

    def _in_footprint(self, point: Point, center: Point,
                      width_m: float, depth_m: float) -> bool:
        return (abs(point[0] - center[0]) <= width_m / 2 and
                abs(point[1] - center[1]) <= depth_m / 2)

    def visible_items(self, center: Point, width_m: float,
                      depth_m: float) -> List[int]:
        """Item ids inside an axis-aligned camera footprint."""
        return [item_id for item_id, point in self.items.items()
                if self._in_footprint(point, center, width_m, depth_m)]

    def visible_people(self, center: Point, width_m: float,
                       depth_m: float) -> List[int]:
        return [p.person_id for p in self.people.values()
                if self._in_footprint(p.position, center, width_m, depth_m)]

    @property
    def item_count(self) -> int:
        return len(self.items)

    @property
    def people_count(self) -> int:
        return len(self.people)
