"""The 2-D world the swarm operates over.

Holds the stationary items of Scenario A (tennis balls on a baseball field)
and the moving people of Scenario B (random-waypoint walkers). The camera
model queries visibility against this world, which is what makes detection
counts and deduplication pressure (the same person photographed by several
drones) emerge from the simulation rather than being scripted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["FieldWorld", "Person"]

Point = Tuple[float, float]


@dataclass
class Person:
    """A walker with a current position and waypoint."""

    person_id: int
    position: Point
    waypoint: Point
    speed_mps: float = 1.2


class FieldWorld:
    """A rectangle with stationary items and moving people."""

    def __init__(self, width_m: float, height_m: float,
                 rng: np.random.Generator):
        if width_m <= 0 or height_m <= 0:
            raise ValueError("field dimensions must be positive")
        self.width_m = width_m
        self.height_m = height_m
        self._rng = rng
        self.items: Dict[int, Point] = {}
        self.people: Dict[int, Person] = {}
        self._clock = 0.0
        #: Lazily built uniform grid over the (static) items: cell -> ids.
        self._item_grid: Optional[Dict[Tuple[int, int], List[int]]] = None
        self._cell_m = 1.0

    def _random_point(self) -> Point:
        return (float(self._rng.uniform(0, self.width_m)),
                float(self._rng.uniform(0, self.height_m)))

    def place_items(self, count: int) -> None:
        """Scatter ``count`` stationary items uniformly (Scenario A)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        start = len(self.items)
        for index in range(start, start + count):
            self.items[index] = self._random_point()
        self._item_grid = None

    def place_people(self, count: int, speed_mps: float = 1.2) -> None:
        """Scatter ``count`` walkers uniformly (Scenario B)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        start = len(self.people)
        for index in range(start, start + count):
            self.people[index] = Person(
                person_id=index,
                position=self._random_point(),
                waypoint=self._random_point(),
                speed_mps=speed_mps,
            )

    def advance(self, to_time: float) -> None:
        """Move every person forward to simulation time ``to_time``."""
        dt = to_time - self._clock
        if dt < 0:
            raise ValueError("world time cannot run backwards")
        if dt == 0:
            return
        self._clock = to_time
        for person in self.people.values():
            remaining = dt * person.speed_mps
            while remaining > 0:
                dx = person.waypoint[0] - person.position[0]
                dy = person.waypoint[1] - person.position[1]
                distance = math.hypot(dx, dy)
                if distance <= remaining:
                    person.position = person.waypoint
                    person.waypoint = self._random_point()
                    remaining -= distance
                    if distance == 0:
                        break
                else:
                    fraction = remaining / distance
                    person.position = (
                        person.position[0] + fraction * dx,
                        person.position[1] + fraction * dy)
                    remaining = 0.0

    def _in_footprint(self, point: Point, center: Point,
                      width_m: float, depth_m: float) -> bool:
        return (abs(point[0] - center[0]) <= width_m / 2 and
                abs(point[1] - center[1]) <= depth_m / 2)

    def _build_item_grid(self) -> Dict[Tuple[int, int], List[int]]:
        """Bucket the stationary items into a uniform grid so footprint
        queries touch only nearby cells instead of scanning every item.

        Cell size tracks the field so the grid stays a few hundred cells
        regardless of scale. Ids within a cell are in insertion (== sorted)
        order, so a sorted merge of cell hits reproduces the exact output
        of the full scan.
        """
        self._cell_m = max(1.0, min(self.width_m, self.height_m) / 32.0)
        grid: Dict[Tuple[int, int], List[int]] = {}
        cell_m = self._cell_m
        for item_id, (x, y) in self.items.items():
            grid.setdefault((int(x / cell_m), int(y / cell_m)),
                            []).append(item_id)
        self._item_grid = grid
        return grid

    def visible_items(self, center: Point, width_m: float,
                      depth_m: float) -> List[int]:
        """Item ids inside an axis-aligned camera footprint."""
        grid = self._item_grid
        if grid is None:
            grid = self._build_item_grid()
        cell_m = self._cell_m
        half_w = width_m / 2
        half_d = depth_m / 2
        cx, cy = center
        x_lo = int(max(0.0, cx - half_w) / cell_m)
        x_hi = int(max(0.0, cx + half_w) / cell_m)
        y_lo = int(max(0.0, cy - half_d) / cell_m)
        y_hi = int(max(0.0, cy + half_d) / cell_m)
        items = self.items
        hits: List[int] = []
        for gx in range(x_lo, x_hi + 1):
            for gy in range(y_lo, y_hi + 1):
                for item_id in grid.get((gx, gy), ()):
                    x, y = items[item_id]
                    if abs(x - cx) <= half_w and abs(y - cy) <= half_d:
                        hits.append(item_id)
        hits.sort()
        return hits

    def visible_people(self, center: Point, width_m: float,
                       depth_m: float) -> List[int]:
        return [p.person_id for p in self.people.values()
                if self._in_footprint(p.position, center, width_m, depth_m)]

    @property
    def item_count(self) -> int:
        return len(self.items)

    @property
    def people_count(self) -> int:
        return len(self.people)
