"""Swarm container: devices, work regions, heartbeats, failure injection.

The swarm owns the mapping from devices to field regions (initial equal
partition, section 2.1) and runs the heartbeat protocol every device speaks
(one beat per second, section 4.6). Failure injection schedules a device
crash mid-mission so the controller-side fault tolerance (3 s timeout +
repartitioning) can be exercised end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generator, List, Optional

from ..config import ControlConstants, PaperConstants
from ..routing import Region, coverage_route, partition_field
from ..sim import Environment, RandomStreams, Store
from ..sim.accounting import tally
from .device import EdgeDevice
from .drone import Drone

__all__ = ["Heartbeat", "Swarm", "build_drone_swarm"]


@dataclass(frozen=True)
class Heartbeat:
    """One liveness beat from a device."""

    device_id: str
    time: float
    battery_fraction: float


class Swarm:
    """A fleet of edge devices plus their work assignment."""

    def __init__(self, env: Environment, devices: List[EdgeDevice],
                 control: Optional[ControlConstants] = None):
        if not devices:
            raise ValueError("a swarm needs at least one device")
        ids = [d.device_id for d in devices]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate device ids in swarm")
        self.env = env
        self.devices: Dict[str, EdgeDevice] = {d.device_id: d
                                               for d in devices}
        self.control = control or ControlConstants()
        self.regions: Dict[str, List[Region]] = {}
        #: Heartbeats flow into this store; the controller consumes them.
        self.heartbeat_bus: Store = Store(env)
        #: Synchronous beat observers; when any are registered the bus is
        #: bypassed entirely (see :meth:`subscribe_heartbeats`).
        self._beat_sinks: List[Callable[[Heartbeat], None]] = []
        self._heartbeat_procs = []

    def __len__(self) -> int:
        return len(self.devices)

    def device(self, device_id: str) -> EdgeDevice:
        found = self.devices.get(device_id)
        if found is None:
            raise KeyError(f"unknown device {device_id!r}")
        return found

    @property
    def alive_devices(self) -> List[EdgeDevice]:
        return [d for d in self.devices.values() if d.alive]

    # -- work assignment ---------------------------------------------------
    def assign_regions(self, width_m: float, height_m: float) -> None:
        """Initial equal division of the field among all devices."""
        tiles = partition_field(width_m, height_m, len(self.devices))
        self.regions = {
            device_id: [tile]
            for device_id, tile in zip(sorted(self.devices), tiles)
        }

    def route_for(self, device_id: str, swath_m: float) -> List:
        """Concatenated coverage route over the device's regions."""
        if device_id not in self.regions:
            raise KeyError(f"no region assigned to {device_id!r}")
        waypoints = []
        for region in self.regions[device_id]:
            waypoints.extend(coverage_route(region, swath_m))
        return waypoints

    # -- heartbeats ------------------------------------------------------------
    def start_heartbeats(self, engine=None) -> None:
        """Begin the 1 Hz heartbeat protocol for every device.

        With an ``engine`` (:class:`~repro.edge.engine.SwarmEngine`) the
        beats run off the engine's shared action heap — one kernel event
        per beat instant for the whole swarm instead of one process per
        device — with identical beat objects at identical instants.
        """
        if engine is not None:
            engine.add_heartbeats(self)
            return
        for device in self.devices.values():
            self._heartbeat_procs.append(
                self.env.process(self._beat(device)))

    def subscribe_heartbeats(self,
                             sink: Callable[[Heartbeat], None]) -> None:
        """Register a synchronous beat observer.

        With at least one observer the beats are handed over directly and
        the :attr:`heartbeat_bus` store is bypassed: at swarm scale the bus
        round-trip (put event, get event, consumer wakeup) dominates the
        event count of centralized runs, and an observer sees each beat at
        the same simulated instant the bus consumer would have.
        """
        self._beat_sinks.append(sink)

    def _beat(self, device: EdgeDevice) -> Generator:
        sinks = self._beat_sinks
        timeout = self.env.timeout
        period = self.control.heartbeat_period_s
        while device.alive:
            beat = Heartbeat(
                device_id=device.device_id,
                time=self.env.now,
                battery_fraction=device.energy.remaining_fraction)
            if sinks:
                tally("edge", 1)
                for sink in sinks:
                    sink(beat)
            else:
                tally("edge", 2)
                yield self.heartbeat_bus.put(beat)
            yield timeout(period)

    # -- failure injection --------------------------------------------------
    def fail_device_at(self, device_id: str, at_time: float) -> None:
        """Schedule a crash of ``device_id`` at absolute time ``at_time``."""
        device = self.device(device_id)

        def killer() -> Generator:
            delay = at_time - self.env.now
            if delay < 0:
                raise ValueError("failure time is in the past")
            yield self.env.timeout(delay)
            device.fail()

        self.env.process(killer())


def build_drone_swarm(env: Environment, constants: PaperConstants,
                      streams: RandomStreams,
                      strict_battery: bool = False,
                      frame_mb: Optional[float] = None,
                      fps: Optional[float] = None) -> Swarm:
    """Build the drone swarm described by ``constants``."""
    drones = [
        Drone(env, f"drone{i:04d}", constants.drone,
              rng=streams.stream(f"edge.drone{i}"),
              strict_battery=strict_battery,
              frame_mb=frame_mb, fps=fps)
        for i in range(constants.drone.count)
    ]
    return Swarm(env, drones, control=constants.control)
