"""Edge devices: field world, sensors, drones, robotic cars, swarms."""

from .car import RoboticCar
from .device import EdgeDevice
from .drone import Drone
from .field import FieldWorld, Person
from .sensors import Camera, FrameBatch, SensorReading, SensorSuite
from .swarm import Heartbeat, Swarm, build_drone_swarm
from .engine import SwarmEngine

__all__ = [
    "SwarmEngine",
    "EdgeDevice",
    "Drone",
    "RoboticCar",
    "FieldWorld",
    "Person",
    "Camera",
    "FrameBatch",
    "SensorReading",
    "SensorSuite",
    "Swarm",
    "Heartbeat",
    "build_drone_swarm",
]
