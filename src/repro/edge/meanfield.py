"""Mean-field aggregate cells: closed-form fig17 saturation curves.

A *cell* of homogeneous devices collapses into counts and rates — no
per-device kernel events. All devices in a swarm fly congruent coverage
routes over identically-sized tiles (:func:`repro.routing.partition_field`
cuts the field into near-equal rectangles, and
:meth:`~repro.config.PaperConstants.scaled_for_swarm` grows the field so
per-device work is constant), so one representative flight profile plus
population statistics reproduces the fig17b observables:

``bandwidth_mbs``
    Every device captures ``B`` batches (the exact tick/turn replay of
    :meth:`repro.edge.drone.Drone.fly_route`, computed without events);
    cloud-admitted batches upload the (optionally edge-filtered) frame
    payload, runtime-remapped batches push only the result payload. The
    meter average is total MB over ceil(makespan) 1-second windows —
    exact, not approximate.

``task_p99_s``
    A deterministic quantile convolution over the latency components the
    discrete-event runner charges: synchronized in-batch uplink waits,
    saturated-link backlog ramps (CSMA collapse), OpenWhisk management
    (warm/cold mixture), invoker execution with interference, the
    scenario-B dedup chain with CouchDB contention
    (:func:`repro.analytical.mmc_wait_time`), and — past the runtime
    remapping point — the single-core device queue that both edge
    recognition and the obstacle-avoidance join drain through.

``makespan_s``
    The max over the competing completion chains (flight, saturated
    uplink drain, cloud tail, slowest device's edge queue), with
    extreme-value corrections for the binomial spread of per-device
    cloud admission.

The model is O(1) in device count: a 1M-device cell costs the same
~10^4-sample convolution as a 16-device cell. Fidelity targets the
sweep-validation band (see ``repro.experiments.sweep.validate``): the
parity suite pins N ∈ {16, 64, 256} × both platforms × both scenarios
against the discrete-event runner.

Calibration constants below were fit against exact-runner anchors at
N ∈ {16, 64, 256, 1024} (seed 0) and are *not* free per-figure knobs:
one set covers every platform/scenario/size cell.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..analytical import lognormal_percentile, mmc_wait_time
from ..apps.scenarios import ScenarioSpec
from ..config import DEFAULT, PaperConstants
from ..dsl import HiveMindCompiler
from ..routing import coverage_route
from ..routing.coverage import Region

__all__ = ["MeanFieldCell", "FlightProfile", "flight_profile",
           "predict_cell", "validate_cells", "synthetic_stream"]

# -- calibration (fit once against the exact runner, seed 0) -------------
#: Mean of the device-side lognormal(0, 0.18) execution jitter.
_EDGE_JITTER_MEAN = math.exp(0.18 ** 2 / 2.0)
#: Invoker multi-tenant noise: lognormal(0, 0.16) multiplier on service.
_INVOKER_JITTER_SIGMA = 0.16
_INVOKER_JITTER_MEAN = math.exp(_INVOKER_JITTER_SIGMA ** 2 / 2.0)
#: Background cold-start rate (keepalive expiries after the first-batch
#: warm-up; the first capture tick is always cold — see predict_cell).
_COLD_FRACTION = 0.003
#: Cold-start rate under p90 straggler mitigation: speculative replicas
#: run isolated (fresh containers), but the replica only sets the task
#: latency when it beats the original, so well under the full straggler
#: decile of invocations carries a cold-start management charge.
_MITIGATION_COLD = 0.04
#: How far into the CSMA collapse range (1 .. max_collapse) a saturated
#: access point actually operates: the penalty ramps with queue depth,
#: so the mission-average sits below the cap.
_COLLAPSE_ACTIVATION = 0.62
#: Convexity of a saturated queue's backlog ramp over the mission
#: (collapse deepens as the queue builds, so early tasks wait less than
#: a linear ramp would predict).
_RAMP_POWER = 1.7
#: Extreme-value shrink: sampled per-device maxima regress toward the
#: mean because service draws partially cancel admission-draw outliers.
_TAIL_SHRINK = 0.92
#: Quantile-convolution resolution. Stratified uniforms with a fixed
#: generator seed keep predictions bit-reproducible.
_SAMPLES = 8192
_RNG_SEED = 20220618

#: Mirrors ``repro.platforms.scenario_runner.CLOUD_BUDGET_CORES``
#: (imported lazily in :func:`_cloud_fraction` to avoid a platform
#: import cycle at module load).
_WIRED_OVERHEADS_S = 0.0008 + 0.0025 + 0.0015 + 0.002  # frontend..kafka


# -- flight geometry ------------------------------------------------------
@dataclass(frozen=True)
class FlightProfile:
    """Event-free replay of one device's coverage flight."""

    flight_s: float          #: takeoff-to-route-end, incl. turn penalties
    moving_s: float          #: seconds spent on legs (capture-eligible)
    batches: int             #: frame batches captured (B)
    first_capture_s: float   #: time of the first capture
    last_capture_s: float    #: time of the last capture
    n_turns: int             #: inter-leg turn penalties paid

    @property
    def capture_spacing_s(self) -> float:
        """Mean spacing between a device's captures over the flight."""
        if self.batches <= 1:
            return self.flight_s
        return (self.last_capture_s - self.first_capture_s) / (
            self.batches - 1)


def flight_profile(constants: PaperConstants) -> FlightProfile:
    """Replay the representative tile's route in closed form.

    Mirrors :meth:`Drone.fly_route` exactly — 1-second ticks along each
    leg, a capture per tick whose step is at least half a second, a turn
    penalty between legs — but walks leg *durations* instead of
    scheduling kernel events.
    """
    # First tile of partition_field(...), computed without materializing
    # all N regions (a 1M-device swarm would allocate a million tiles
    # just to read one). The grid is rows ~ sqrt(N) with the remainder
    # spread one-extra-tile-per-row, so tile 0 sits in a row of
    # base + (1 if remainder) tiles; scaled_for_swarm grows the field
    # proportionally, which keeps this tile the same size at every N.
    n_regions = constants.drone.count
    rows = max(1, round(math.sqrt(n_regions)))
    base, extra = divmod(n_regions, rows)
    in_first_row = base + (1 if extra else 0)
    tile = Region(x0=0.0, y0=0.0,
                  x1=constants.field_width_m / in_first_row,
                  y1=constants.field_height_m / rows)
    route = coverage_route(tile, constants.drone.fov_width_m)
    speed = constants.drone.speed_mps
    turn_s = constants.drone.turn_time_s
    now = 0.0
    moving = 0.0
    batches = 0
    first = last = None
    position = route[0]
    for target in route[1:]:
        distance = math.dist(position, target)
        position = target
        remaining = distance
        while remaining > 1e-9 * max(1.0, speed):
            step_s = min(1.0, remaining / speed)
            remaining -= speed * step_s
            now += step_s
            moving += step_s
            if step_s >= 0.5:
                batches += 1
                last = now
                if first is None:
                    first = now
        now += turn_s
    # fly_route pays the turn penalty after *every* leg, including the
    # last one — the mission ends when the final turn completes.
    n_turns = max(0, len(route) - 1)
    flight_s = moving + n_turns * turn_s
    return FlightProfile(flight_s=flight_s, moving_s=moving,
                         batches=batches,
                         first_capture_s=first if first is not None else 0.0,
                         last_capture_s=last if last is not None else 0.0,
                         n_turns=n_turns)


# -- population model -----------------------------------------------------
@dataclass(frozen=True)
class MeanFieldCell:
    """One aggregate cell's predicted fig17b observables."""

    platform: str
    scenario_key: str
    n_devices: int
    bandwidth_mbs: float
    task_p99_s: float
    makespan_s: float
    details: Dict[str, float]

    @property
    def triple(self) -> Tuple[float, float, float]:
        """(bw mean MB/s, task p99 s, makespan s) — the fig17b cell."""
        return (self.bandwidth_mbs, self.task_p99_s, self.makespan_s)


def _recognition_tier(config, scenario: ScenarioSpec, n_devices: int,
                      constants: PaperConstants) -> str:
    if config.execution == "hybrid":
        graph, directives = scenario.dsl_graph()
        compiler = HiveMindCompiler(constants, n_devices=n_devices,
                                    accelerated=config.net_accel)
        return compiler.compile(graph, directives).placement.tier_of(
            "recognition")
    if config.execution == "edge":
        return "edge"
    return "cloud"


def _cloud_fraction(config, scenario: ScenarioSpec, n_devices: int,
                    tier: str) -> float:
    """Runtime-remapping admission fraction (section 4.2)."""
    from ..platforms.scenario_runner import CLOUD_BUDGET_CORES
    if config.execution != "hybrid" or tier != "cloud":
        return 1.0 if tier == "cloud" else 0.0
    demand = n_devices * scenario.recognition.cloud_service_s
    return min(1.0, CLOUD_BUDGET_CORES / demand)


def _lognormal_mean(median: float, sigma: float) -> float:
    return median * math.exp(sigma ** 2 / 2.0)


def _stage_backlog(arrival_hz: float, capacity_hz: float,
                   window_s: float) -> float:
    """Final backlog (seconds of wait) a saturated stage accumulates."""
    if capacity_hz <= 0.0:
        return 0.0
    rho = arrival_hz / capacity_hz
    if rho <= 1.0:
        return 0.0
    return (rho - 1.0) / rho * window_s * rho  # (in - out)/out * window


def predict_cell(platform: Union[str, object],
                 scenario: Union[str, ScenarioSpec],
                 n_devices: int,
                 constants: Optional[PaperConstants] = None,
                 seed: int = 0) -> MeanFieldCell:
    """Predict one fig17b cell without simulating any device.

    ``platform`` is a platform key (``"hivemind"``/``"centralized_faas"``)
    or a :class:`~repro.platforms.base.PlatformConfig`; ``scenario`` a
    key (``"ScA"``/``"ScB"``) or :class:`ScenarioSpec`. ``seed`` is
    accepted for signature parity with the exact cell and ignored — the
    model predicts the population, not one draw.
    """
    from ..platforms import platform_config
    if isinstance(platform, str):
        config = platform_config(platform)
    else:
        config = platform
    if isinstance(scenario, str):
        from ..apps import SCENARIO_A, SCENARIO_B
        scenario = {s.key: s for s in (SCENARIO_A, SCENARIO_B)}[scenario]
    if n_devices <= 0:
        raise ValueError("n_devices must be positive")
    base = constants if constants is not None else DEFAULT
    cst = base.scaled_for_swarm(n_devices)
    profile = flight_profile(cst)
    B = max(1, profile.batches)

    tier = _recognition_tier(config, scenario, n_devices, cst)
    f_cloud = _cloud_fraction(config, scenario, n_devices, tier)
    f_edge = 1.0 - f_cloud

    app = scenario.recognition
    dedup = scenario.dedup
    sls = cst.serverless
    wl = cst.wireless

    # -- payloads --------------------------------------------------------
    upload_mb = app.input_mb
    if config.edge_filtering:
        upload_mb = app.input_mb * app.edge_filter_keep
    push_mb = app.output_mb  # runtime-remapped batches push results only
    mb_per_batch = f_cloud * upload_mb + f_edge * push_mb

    # -- uplink (per access point, synchronized capture ticks) -----------
    group = max(1, math.ceil(n_devices / wl.access_points))
    ser_s = upload_mb / (wl.ap_mbs * (1.0 - wl.loss_rate))
    uplink_work = f_cloud * group * ser_s          # wire-seconds per tick
    collapse = 1.0
    if uplink_work > 1.0:
        collapse = 1.0 + _COLLAPSE_ACTIVATION * (wl.max_collapse - 1.0)
    ser_eff = ser_s * collapse
    uplink_backlog = max(
        0.0, (f_cloud * group * ser_eff - 1.0) * profile.moving_s
        - profile.n_turns * cst.drone.turn_time_s)

    # -- cloud control/compute/storage stages ----------------------------
    # Arrivals the uplink actually delivers downstream (tasks/s, whole
    # swarm, mission average).
    rate_per_device = B / profile.flight_s
    offered_hz = f_cloud * n_devices * rate_per_device
    uplink_cap_hz = (wl.access_points / ser_eff if upload_mb > 0
                     else float("inf"))
    delivered_hz = min(offered_hz, uplink_cap_hz)

    n_controllers = config.n_controllers
    if config.scheduler == "hivemind":
        n_controllers = max(n_controllers, math.ceil(n_devices / 64))
    ctrl_cap_hz = n_controllers / sls.controller_service_s
    ctrl_backlog = _stage_backlog(delivered_hz, ctrl_cap_hz,
                                  profile.moving_s)
    delivered_hz = min(delivered_hz, ctrl_cap_hz)

    # Invoker interference: the hivemind scheduler packs activations for
    # data locality, so the hot servers run past the 0.5-utilization
    # interference knee; round-robin spreads load and only inflates once
    # the whole fleet crosses it. The lognormal(0, 0.16) factor is the
    # invoker's multi-tenant noise jitter.
    cores = cst.cluster.servers * cst.cluster.cores_per_server
    base_exec_mean = _lognormal_mean(app.cloud_service_s, app.service_sigma)
    fleet_util = min(1.0, delivered_hz * base_exec_mean / cores)
    if config.scheduler == "hivemind":
        interference = 1.0 + sls.interference_slope * 0.5
    else:
        interference = (1.0 + sls.interference_slope
                        * max(0.0, fleet_util - 0.5))
    exec_rec_mean = base_exec_mean * interference * _INVOKER_JITTER_MEAN
    invoker_cap_hz = cores / exec_rec_mean
    invoker_backlog = _stage_backlog(delivered_hz, invoker_cap_hz,
                                     profile.moving_s)
    delivered_hz = min(delivered_hz, invoker_cap_hz)

    # -- device core (runtime-remapped recognition + obstacle join) ------
    from ..platforms.scenario_runner import (OBSTACLE_SERVICE_S,
                                             OBSTACLE_SLOWDOWN)
    obstacle_mean = (OBSTACLE_SERVICE_S * OBSTACLE_SLOWDOWN
                     * _EDGE_JITTER_MEAN)
    edge_exec_mean = ((_lognormal_mean(app.cloud_service_s,
                                       app.service_sigma)
                       + scenario.edge_extra_service_s)
                      * app.edge_slowdown * _EDGE_JITTER_MEAN)
    dev_work_mean = f_edge * edge_exec_mean + obstacle_mean

    # CouchDB: recognition persists (cloud batches) plus, for scenarios
    # with an aggregate stage, one dedup persist per batch. Arrivals are
    # throttled upstream — a saturated device core feeds its aggregate
    # stage only as fast as it drains.
    pareto_mean = (sls.couchdb_tail_alpha / (sls.couchdb_tail_alpha - 1.0))
    rec_op_s = (sls.couchdb_latency_s
                + app.output_mb / sls.couchdb_mbs) * pareto_mean
    agg_op_s = (sls.couchdb_latency_s + 0.05 / sls.couchdb_mbs) * pareto_mean
    couch_hz = delivered_hz
    couch_work = delivered_hz * rec_op_s
    if dedup is not None:
        edge_drain_hz = f_edge * n_devices * min(
            rate_per_device, 1.0 / max(dev_work_mean, 1e-9))
        dedup_hz = min(f_cloud * n_devices * rate_per_device,
                       delivered_hz) + edge_drain_hz
        couch_hz = couch_hz + dedup_hz
        couch_work = couch_work + dedup_hz * agg_op_s
    couch_op_s = couch_work / couch_hz if couch_hz > 0 else 0.0
    couch_rho = couch_work / 8.0              # CouchDB concurrency = 8
    couch_wait = (mmc_wait_time(
        8, min(couch_hz, 0.999 * 8.0 / couch_op_s), couch_op_s)
        if couch_op_s > 0 else 0.0)
    couch_backlog = _stage_backlog(couch_hz, 8.0 / couch_op_s,
                                   profile.moving_s) if couch_op_s else 0.0

    cloud_backlog = uplink_backlog + ctrl_backlog + invoker_backlog

    spacing = profile.flight_s / B              # seconds per capture slot
    # Per-capture work variance on the device core: Bernoulli admission
    # times a jittered edge execution, plus the obstacle join. Drives
    # both the random-walk backlog spread (a device's queue at capture k
    # wanders sqrt(k) around the drift) and the slowest-device makespan.
    edge_exec_var = (f_edge * (1.0 - f_edge) * edge_exec_mean ** 2
                     + f_edge * (edge_exec_mean * 0.18) ** 2)
    sigma_step = math.sqrt(edge_exec_var) if f_edge > 0.0 else 0.0

    # -- quantile convolution -------------------------------------------
    rng = np.random.default_rng(_RNG_SEED)
    K = _SAMPLES
    u = (np.arange(K) + 0.5) / K                # stratified uniforms

    # Capture index k (uniform over the mission) and the admission mix
    # of the owning device (binomial spread, extreme-value shrink).
    k = rng.permutation(np.ceil(u * B))
    drift = f_edge * edge_exec_mean + obstacle_mean - spacing
    dev_backlog = np.maximum(
        0.0, k * drift + np.sqrt(k) * sigma_step * _TAIL_SHRINK
        * rng.standard_normal(K))

    # Cloud path: in-batch uplink position + serialization + backbone +
    # saturated ramps + management + execution (+ dedup chain). A
    # saturated uplink's backlog ramp already contains the in-batch
    # position (the queue never empties between ticks).
    if collapse > 1.0:
        in_batch = np.zeros(K)
    else:
        in_batch = rng.integers(0, max(1, round(f_cloud * group)),
                                K) * ser_eff
    backbone = (wl.base_rtt_s + wl.per_hop_latency_s
                + upload_mb / cst.cluster.nic_bandwidth_mbs
                + cst.cluster.tor_latency_s + cst.cluster.sw_rpc_overhead_s)
    ramp = (cloud_backlog + couch_backlog) * rng.permutation(u) ** _RAMP_POWER
    # Cold starts concentrate on the mission's first capture tick — the
    # warm pool grows on demand, so the synchronized first batch pays
    # the cold cost *and* the deepest in-batch queue position. A small
    # background rate covers keepalive expiries later in the mission.
    p_cold = (_MITIGATION_COLD if config.straggler_mitigation
              else _COLD_FRACTION)
    cold = (k <= 1.0) | (rng.random(K) < p_cold)
    mgmt = np.where(
        cold,
        sls.cold_start_median_s * np.exp(
            sls.cold_start_sigma * rng.standard_normal(K)),
        sls.warm_start_s) + _WIRED_OVERHEADS_S
    sigma_rec = math.hypot(app.service_sigma, _INVOKER_JITTER_SIGMA)
    exec_rec = app.cloud_service_s * np.exp(
        sigma_rec * rng.standard_normal(K)) * interference
    cloud_lat = in_batch + ser_eff + backbone + ramp + mgmt + exec_rec
    dedup_mean = 0.0
    if dedup is not None:
        sigma_dedup = math.hypot(dedup.service_sigma,
                                 _INVOKER_JITTER_SIGMA)
        exec_dedup = dedup.cloud_service_s * np.exp(
            sigma_dedup * rng.standard_normal(K)) * interference
        dedup_mean = (_lognormal_mean(dedup.cloud_service_s,
                                      dedup.service_sigma)
                      * interference * _INVOKER_JITTER_MEAN)
        cold_dedup = (k <= 1.0) | (rng.random(K) < p_cold)
        mgmt_dedup = np.where(
            cold_dedup,
            sls.cold_start_median_s * np.exp(
                sls.cold_start_sigma * rng.standard_normal(K)),
            sls.warm_start_s)
        dedup_lat = (mgmt_dedup + _WIRED_OVERHEADS_S + exec_dedup
                     + couch_wait
                     + app.output_mb / sls.rpc_share_mbs)
        cloud_lat = cloud_lat + dedup_lat

    # Edge path: on-board execution + result push (+ the dedup stage
    # still runs at the cloud tier).
    edge_exec = ((app.cloud_service_s * np.exp(
        app.service_sigma * rng.standard_normal(K))
        + scenario.edge_extra_service_s) * app.edge_slowdown
        * np.exp(0.18 * rng.standard_normal(K)))
    edge_lat = edge_exec + push_mb / wl.ap_mbs + wl.base_rtt_s
    if dedup is not None:
        edge_lat = edge_lat + dedup_lat

    is_cloud = rng.random(K) < f_cloud
    obstacle = OBSTACLE_SERVICE_S * OBSTACLE_SLOWDOWN * np.exp(
        0.18 * rng.standard_normal(K))
    latency = dev_backlog + np.where(is_cloud,
                                     np.maximum(cloud_lat, obstacle),
                                     edge_lat)
    task_p99 = float(np.percentile(latency, 99.0))

    # -- makespan: slowest completion chain ------------------------------
    chains = [profile.flight_s]
    # Cloud chain: the last capture's message rides the full backlog.
    in_batch_last = (0.0 if collapse > 1.0
                     else max(0.0, f_cloud * group - 1.0) * ser_eff)
    resid = (in_batch_last + ser_eff + backbone
             + sls.warm_start_s + _WIRED_OVERHEADS_S
             + exec_rec_mean + dedup_mean + couch_wait)
    if f_cloud > 0.0:
        chains.append(profile.last_capture_s + cloud_backlog
                      + couch_backlog + resid)
    # Device chain: the most edge-loaded device drains its whole queue
    # (extreme value of the B-step admission/service random walk over
    # the fleet).
    if f_edge > 0.0:
        z_max = math.sqrt(2.0 * math.log(max(2, n_devices)))
        dev_total = (B * (f_edge * edge_exec_mean + obstacle_mean)
                     + math.sqrt(B) * sigma_step * _TAIL_SHRINK * z_max)
        chains.append(profile.first_capture_s + dev_total
                      + (dedup_mean if dedup is not None else 0.0))
    makespan = max(chains)

    total_mb = n_devices * B * mb_per_batch
    bandwidth = total_mb / max(1, math.ceil(makespan))

    return MeanFieldCell(
        platform=config.name, scenario_key=scenario.key,
        n_devices=n_devices, bandwidth_mbs=bandwidth,
        task_p99_s=task_p99, makespan_s=makespan,
        details={
            "batches_per_device": float(B),
            "flight_s": profile.flight_s,
            "cloud_fraction": f_cloud,
            "recognition_tier": tier,
            "uplink_backlog_s": uplink_backlog,
            "controller_backlog_s": ctrl_backlog,
            "invoker_backlog_s": invoker_backlog,
            "couch_backlog_s": couch_backlog,
            "couch_rho": couch_rho,
            "device_work_per_capture_s": float(
                f_edge * edge_exec_mean + obstacle_mean),
            "mb_per_batch": mb_per_batch,
        })


def synthetic_stream(platform: Union[str, object],
                     scenario: Union[str, ScenarioSpec],
                     n_devices: int, cell_index: int,
                     device_id_base: int, total_devices: int,
                     seed: int = 0,
                     constants: Optional[PaperConstants] = None,
                     slots: int = 64):
    """Price one mean-field cell's *cloud-bound load* as weighted
    synthetic arrival streams for the sharded cloud tier (hybrid runs).

    Instead of simulating the cell's ``n_devices * B`` tasks, the cell's
    mission-long demand is compressed into at most ``slots`` synthetic
    :class:`~repro.sim.shard.CloudCall` messages, each carrying
    ``weight = total_tasks / slots`` tasks' worth of service time and
    payload — total core-seconds, storage bytes, and wireless megabytes
    are conserved exactly, while per-call granularity is coarse (the
    point: a 100k-device background fleet prices into a few thousand
    calls). The cloud/edge admission split, edge filtering, and the
    dedup-only shape of edge-executed batches all mirror the exact
    runner's boundary-submit sites.

    Returns ``(calls, meter_events)``: the calls in canonical
    (arrival, cell, seq) order flagged ``synthetic=True`` (the region
    gateway serves them without straggler mitigation and counts them as
    background completions), and the wireless-meter events
    ``(time, megabytes)`` the cell's uploads/result pushes would have
    recorded.
    """
    from ..platforms import platform_config
    from ..sim.shard import CloudCall
    config = (platform_config(platform) if isinstance(platform, str)
              else platform)
    if isinstance(scenario, str):
        from ..apps import SCENARIO_A, SCENARIO_B
        scenario = {s.key: s for s in (SCENARIO_A, SCENARIO_B)}[scenario]
    if n_devices <= 0:
        raise ValueError("n_devices must be positive")
    if slots <= 0:
        raise ValueError("slots must be positive")
    base = constants if constants is not None else DEFAULT
    cst = base.scaled_for_swarm(total_devices)
    profile = flight_profile(cst)
    B = max(1, profile.batches)
    tier = _recognition_tier(config, scenario, total_devices, cst)
    f_cloud = _cloud_fraction(config, scenario, total_devices, tier)

    app = scenario.recognition
    dedup = scenario.dedup
    upload_mb = app.input_mb
    if config.edge_filtering:
        upload_mb = app.input_mb * app.edge_filter_keep
    total_tasks = n_devices * B
    K = max(1, min(int(slots), total_tasks))
    weight = total_tasks / K
    n_cloud = round(K * f_cloud)

    rng = np.random.default_rng([_RNG_SEED, seed, device_id_base])
    # Stratified arrivals over the capture span: one slot per stratum,
    # jittered inside it, so the aggregate stream has the mission's
    # arrival envelope at any slot count.
    span = max(profile.last_capture_s - profile.first_capture_s, 0.0)
    arrivals = np.sort(profile.first_capture_s
                       + (np.arange(K) + rng.random(K)) / K * span)
    is_cloud = rng.permutation(
        np.arange(K) < n_cloud) if 0 < n_cloud < K else (
        np.full(K, n_cloud >= K))

    calls = []
    meter_events = []
    seq = 0
    for slot in range(K):
        arrival = float(arrivals[slot])
        if is_cloud[slot]:
            recognition_s = weight * float(rng.lognormal(
                math.log(app.cloud_service_s), app.service_sigma))
            dedup_s = (weight * float(rng.lognormal(
                math.log(dedup.cloud_service_s), dedup.service_sigma))
                if dedup is not None else None)
            calls.append(CloudCall(
                cell=cell_index, seq=seq, device_id=f"mf{cell_index}",
                arrival_s=arrival, recognition_s=recognition_s,
                dedup_s=dedup_s, input_mb=upload_mb * weight,
                output_mb=app.output_mb * weight,
                synthetic=True, weight=weight))
            seq += 1
            meter_events.append((arrival, upload_mb * weight))
        else:
            # Edge-executed batch: the result push still crosses the
            # wireless medium, and (for scenarios with an aggregate
            # stage) a dedup-only message still lands at the cloud tier.
            meter_events.append((arrival, app.output_mb * weight))
            if dedup is not None:
                dedup_s = weight * float(rng.lognormal(
                    math.log(dedup.cloud_service_s), dedup.service_sigma))
                calls.append(CloudCall(
                    cell=cell_index, seq=seq,
                    device_id=f"mf{cell_index}", arrival_s=arrival,
                    recognition_s=None, dedup_s=dedup_s,
                    input_mb=0.1 * weight, output_mb=0.05 * weight,
                    synthetic=True, weight=weight))
                seq += 1
    return calls, meter_events


def validate_cells(sizes: Sequence[int] = (16, 64, 256),
                   platforms: Sequence[str] = ("hivemind",
                                               "centralized_faas"),
                   scenario_keys: Sequence[str] = ("ScA", "ScB"),
                   tolerance_pct: float = 25.0,
                   seed: int = 0) -> List[Dict[str, object]]:
    """Compare aggregate cells against the exact runner (small N).

    Returns one row per (platform, scenario, size) with per-observable
    deviations; ``within`` is True when every observable lands inside
    ``tolerance_pct`` (the sweep-validation band).
    """
    # The exact leg bypasses the fig17 cell router on purpose: under
    # REPRO_MEANFIELD=1 the router returns this module's own estimates,
    # and a model-vs-itself comparison would validate nothing.
    from ..apps import SCENARIO_A, SCENARIO_B
    from ..platforms import ScenarioRunner, platform_config
    scenarios = {s.key: s for s in (SCENARIO_A, SCENARIO_B)}

    def exact_cell(platform: str, key: str, n: int):
        result = ScenarioRunner(
            platform_config(platform), scenarios[key], seed=seed,
            n_devices=n).run()
        bw_mean, _ = result.bandwidth_summary()
        return (bw_mean, result.task_latencies.p99,
                result.extras["makespan_s"])

    rows: List[Dict[str, object]] = []
    for platform in platforms:
        for key in scenario_keys:
            for n in sizes:
                exact = exact_cell(platform, key, n)
                model = predict_cell(platform, key, n).triple
                devs = [100.0 * (m - e) / e if e else 0.0
                        for m, e in zip(model, exact)]
                rows.append({
                    "platform": platform, "scenario": key, "devices": n,
                    "exact": exact, "model": model,
                    "deviation_pct": devs,
                    "within": all(abs(d) <= tolerance_pct for d in devs),
                })
    return rows
