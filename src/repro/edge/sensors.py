"""On-board sensing: the camera and the telemetry sensor suite.

Drones carry an 8 MP underside camera collecting 8 frames per second at
2 MB per frame by default (section 2.1), plus gyroscope, accelerometer,
thermometer, magnetometer, hygrometer, and ultrasound altitude sensors.
A :class:`FrameBatch` is the unit the tasks consume — one second of frames —
matching the paper's task definition ("recognizing a human face in a frame
batch of one second").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from .field import FieldWorld

__all__ = ["FrameBatch", "Camera", "SensorReading", "SensorSuite"]

Point = Tuple[float, float]


@dataclass(frozen=True)
class FrameBatch:
    """One second of camera frames captured at one position."""

    device_id: str
    time: float
    position: Point
    frame_count: int
    total_mb: float
    item_sightings: List[int] = field(default_factory=list)
    people_sightings: List[int] = field(default_factory=list)


class Camera:
    """The underside photo camera."""

    def __init__(self, fps: float, frame_mb: float,
                 fov_width_m: float, fov_depth_m: float):
        if fps <= 0 or frame_mb <= 0:
            raise ValueError("fps and frame size must be positive")
        if fov_width_m <= 0 or fov_depth_m <= 0:
            raise ValueError("field of view must be positive")
        self.fps = fps
        self.frame_mb = frame_mb
        self.fov_width_m = fov_width_m
        self.fov_depth_m = fov_depth_m

    def capture_batch(self, device_id: str, world: FieldWorld,
                      position: Point, time: float,
                      duration_s: float = 1.0) -> FrameBatch:
        """Capture ``duration_s`` worth of frames at ``position``."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        frames = max(1, round(self.fps * duration_s))
        return FrameBatch(
            device_id=device_id,
            time=time,
            position=position,
            frame_count=frames,
            total_mb=frames * self.frame_mb,
            item_sightings=world.visible_items(
                position, self.fov_width_m, self.fov_depth_m),
            people_sightings=world.visible_people(
                position, self.fov_width_m, self.fov_depth_m),
        )


@dataclass(frozen=True)
class SensorReading:
    """One sample of the non-camera sensors."""

    time: float
    temperature_c: float
    humidity_pct: float
    altitude_m: float
    acceleration: Tuple[float, float, float]
    heading_deg: float
    size_mb: float = 0.002  # a telemetry record is a couple of KB


class SensorSuite:
    """Generates plausible telemetry streams for the analytics jobs."""

    def __init__(self, rng: np.random.Generator,
                 base_temperature_c: float = 24.0,
                 base_humidity_pct: float = 55.0):
        self._rng = rng
        self.base_temperature_c = base_temperature_c
        self.base_humidity_pct = base_humidity_pct

    def sample(self, time: float, altitude_m: float = 5.0) -> SensorReading:
        rng = self._rng
        # Slow diurnal-ish drift plus sensor noise.
        drift = 2.0 * np.sin(time / 600.0)
        return SensorReading(
            time=time,
            temperature_c=float(self.base_temperature_c + drift +
                                rng.normal(0, 0.3)),
            humidity_pct=float(np.clip(
                self.base_humidity_pct - 3 * drift + rng.normal(0, 1.0),
                0, 100)),
            altitude_m=float(altitude_m + rng.normal(0, 0.15)),
            acceleration=(float(rng.normal(0, 0.4)),
                          float(rng.normal(0, 0.4)),
                          float(rng.normal(9.81, 0.2))),
            heading_deg=float(rng.uniform(0, 360)),
        )
