"""Vectorized swarm stepping: array-backed flight state, batched ticks.

The legacy flight model (:meth:`~repro.edge.drone.Drone.fly_route`) runs one
generator process per drone and pushes one kernel event through the heap per
drone per simulated second. At fig17 scale (hundreds to thousands of drones,
all released at t=0 and therefore tick-synchronized) that is O(N) events per
instant carrying O(1) of actual work each.

:class:`SwarmEngine` replaces those processes with a single action heap:

- Device kinematics (position, leg target, speed) live in numpy arrays
  indexed by flight slot; each engine *wake* advances every device due at
  that instant with one batch of array ops.
- One kernel event is armed per **distinct** due instant, not per device:
  a synchronized 256-drone cohort costs one wake where the legacy path
  costs 256 timeout dispatches.
- Straight legs flown without capture are integrated **analytically**: the
  whole leg becomes a single event at its final tick boundary, with the
  per-tick position/energy arithmetic replayed at settlement so the energy
  ledger stays bit-identical to the tick-by-tick path.
- Heartbeats are absorbed into the same action heap (one wake per beat
  instant for the whole swarm) and emit the same :class:`Heartbeat`
  objects to the same sinks/bus.
- The engine itself draws no randomness — drone jitter lognormals are
  drawn by the per-device ``runner.drone{i}`` streams, which the platform
  runners serve from draw-ahead buffers (:meth:`~repro.sim.rng.
  RandomStreams.buffered`), so engine wakes never touch a Generator.

Determinism contract (PR 1's, extended): at fixed seeds a run through the
engine produces byte-identical figure rows to the legacy per-device
processes. The engine guarantees this by

1. replaying the exact scalar arithmetic of the legacy tick loop — numpy's
   elementwise ``+ - * / sqrt minimum`` on float64 are the same correctly
   rounded IEEE-754 operations as Python's scalar float math, so the
   vector and scalar paths produce identical bits (the legacy leg distance
   switched from ``math.hypot`` to ``sqrt(dx*dx + dy*dy)`` for the same
   reason);
2. assigning every armed action a monotone sequence number at arm time —
   the engine-internal mirror of the kernel's event id — and dispatching
   same-instant actions in sequence order, which reproduces the legacy
   creation-order semantics (beats re-armed before ticks keep firing
   before ticks, a turn armed before a tick keeps preceding it, ...);
3. arming each kernel wake with the same *delay* float the legacy code
   passed to ``timeout()``, so wake instants are the exact same doubles
   as the legacy arrival instants;
4. keeping every observable side effect — ``account_motion`` draws,
   ``world.advance`` calls, ``capture_batch``/``on_batch`` invocations,
   shared-RNG draw order, resource request order — in the same per-device
   order as the legacy dispatch sequence.

The kill switch: ``ScenarioRunner(..., vector_edge=False)``,
``REPRO_VECTOR_EDGE=0`` in the environment, or ``--no-vector-edge`` on the
experiments CLI all fall back to the legacy per-device processes.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from heapq import heappop, heappush
from itertools import count
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..sim import Environment
from ..sim.accounting import tally
from .. import obs
from .drone import Drone
from .field import FieldWorld
from .sensors import FrameBatch
from .swarm import Heartbeat, Swarm

__all__ = ["SwarmEngine"]

Point = Tuple[float, float]
BatchCallback = Callable[[FrameBatch], None]

#: Action kinds on the engine heap. A tick is the landing of an in-flight
#: 1-second step; a turn is the end of an inter-leg turn penalty; a beat is
#: one device's heartbeat; a settle is the landing of an analytic leg.
_TICK, _TURN, _BEAT, _SETTLE = 0, 1, 2, 3

#: Cohorts at least this large take the numpy path; smaller ones use the
#: scalar loop (identical IEEE-754 results, less fixed overhead).
_VECTOR_MIN = 8

#: Same leg-complete threshold as the legacy tick loop.
_EPS = 1e-9


class _Flight:
    """Mutable per-route state for one device flown by the engine."""

    __slots__ = ("drone", "world", "on_batch", "capture", "waypoints",
                 "wp_index", "event", "batches", "slot", "pending_s", "gen",
                 "leg_steps", "leg_arrivals", "leg_positions",
                 "trace", "leg_started")

    def __init__(self, drone: Drone, world: FieldWorld,
                 on_batch: Optional[BatchCallback], capture: bool,
                 waypoints: List[Point], event) -> None:
        self.drone = drone
        self.world = world
        self.on_batch = on_batch
        self.capture = capture
        self.waypoints = waypoints
        self.wp_index = 0
        self.event = event
        self.batches = 0
        self.slot = -1
        #: Duration of the step currently in flight (armed as a _TICK).
        self.pending_s = 0.0
        #: Generation counter; bumping it invalidates armed actions that
        #: still carry the old value (analytic-leg truncation on failure).
        self.gen = 0
        # Analytic-leg replay (step durations, arrival instants, per-tick
        # positions) — populated only while a _SETTLE action is armed.
        self.leg_steps: Optional[List[float]] = None
        self.leg_arrivals: Optional[List[float]] = None
        self.leg_positions: Optional[List[Point]] = None
        #: Causal trace handle for the whole route (NULL_CONTEXT when
        #: tracing is off) and the pending analytic leg's start instant.
        self.trace = obs.NULL_CONTEXT
        self.leg_started = 0.0


class _BeatLoop:
    """One device's recurring heartbeat action."""

    __slots__ = ("swarm", "device")

    def __init__(self, swarm: Swarm, device) -> None:
        self.swarm = swarm
        self.device = device


class SwarmEngine:
    """Array-backed swarm stepper sharing one action heap per environment."""

    def __init__(self, env: Environment):
        self.env = env
        #: Pending actions: (time, seq, kind, payload, gen). ``seq`` is
        #: unique, so heap order is exactly (time, seq) — the engine's
        #: mirror of the kernel's (time, priority, eid) dispatch order.
        self._actions: List = []
        self._seq = count()
        #: Absolute instants that already have a kernel wake scheduled.
        self._armed = set()
        # Flight-slot arrays: position, leg target, cruise speed.
        capacity = 16
        self._px = np.zeros(capacity)
        self._py = np.zeros(capacity)
        self._tx = np.zeros(capacity)
        self._ty = np.zeros(capacity)
        self._speed = np.zeros(capacity)
        self._free = list(range(capacity - 1, -1, -1))
        # Telemetry for the benchmark harness.
        self.wakes = 0
        self.actions_run = 0
        self.analytic_legs = 0

    # -- public API ---------------------------------------------------------
    def fly_route(self, drone: Drone, waypoints: List[Point],
                  world: FieldWorld,
                  on_batch: Optional[BatchCallback] = None,
                  capture: bool = True):
        """Fly ``waypoints`` through the engine; replaces
        ``env.process(drone.fly_route(...))``.

        Returns an :class:`~repro.sim.Event` that succeeds with the number
        of batches captured, at the same instant the legacy process would
        have terminated.
        """
        event = self.env.event()
        if not waypoints:
            event.succeed(0)
            return event
        flight = _Flight(drone, world, on_batch, capture,
                         waypoints, event)
        flight.trace = obs.root_span("flight", "edge", self.env.now,
                                     device=drone.device_id,
                                     waypoints=len(waypoints))
        flight.slot = self._alloc_slot()
        drone.position = waypoints[0]
        self._px[flight.slot], self._py[flight.slot] = waypoints[0]
        self._speed[flight.slot] = drone.speed_mps
        self._next_leg(flight)
        return event

    def add_heartbeats(self, swarm: Swarm) -> None:
        """Run the swarm's 1 Hz heartbeat protocol off the action heap.

        Emits the same :class:`Heartbeat` objects to the same sinks (or
        the bus) at the same instants as ``Swarm.start_heartbeats``, but
        all devices beating at one instant share a single kernel event.
        """
        for device in swarm.devices.values():
            self._arm(0.0, _BEAT, _BeatLoop(swarm, device), 0)

    # -- slots ------------------------------------------------------------
    def _alloc_slot(self) -> int:
        if not self._free:
            old = len(self._px)
            new = old * 2
            for name in ("_px", "_py", "_tx", "_ty", "_speed"):
                grown = np.zeros(new)
                grown[:old] = getattr(self, name)
                setattr(self, name, grown)
            self._free.extend(range(new - 1, old - 1, -1))
        return self._free.pop()

    # -- scheduling ----------------------------------------------------------
    def _arm(self, delay: float, kind: int, payload, gen: int) -> None:
        """Arm one action ``delay`` seconds from now.

        The wake instant is computed with the same ``now + delay`` float
        expression the kernel uses, so engine actions land on exactly the
        doubles the legacy per-device timeouts would have landed on — and
        all actions sharing an instant share one kernel event.
        """
        time = self.env.now + delay
        heappush(self._actions, (time, next(self._seq), kind, payload, gen))
        if time not in self._armed:
            self._armed.add(time)
            tally("edge", 1)
            wake = self.env.timeout(delay)
            wake.callbacks.append(self._wake)

    def _wake(self, _event) -> None:
        now = self.env.now
        self._armed.discard(now)
        self.wakes += 1
        actions = self._actions
        due = []
        while actions and actions[0][0] <= now:
            due.append(heappop(actions))
        self.actions_run += len(due)
        index, n = 0, len(due)
        while index < n:
            kind = due[index][2]
            if kind == _TICK:
                stop = index + 1
                while stop < n and due[stop][2] == _TICK:
                    stop += 1
                self._tick_cohort([entry[3] for entry in due[index:stop]])
                index = stop
                continue
            _, _, _, payload, gen = due[index]
            index += 1
            if kind == _BEAT:
                self._do_beat(payload)
            elif gen != payload.gen:
                continue  # cancelled (analytic leg truncated)
            elif kind == _TURN:
                self._end_turn(payload)
            else:
                self._settle_leg(payload)

    # -- ticks ------------------------------------------------------------
    def _tick_cohort(self, flights: List[_Flight]) -> None:
        """Land the in-flight step of every due flight, then arm the next.

        Phase 1 mirrors the legacy post-``yield`` sequence per device, in
        arm order: motion accounting, world clock, capture + callback.
        Phase 2 computes every survivor's next step in one batch of array
        ops, then applies results (or leg-boundary handling) per device,
        again in arm order.
        """
        env = self.env
        now = env.now
        for flight in flights:
            drone = flight.drone
            step = flight.pending_s
            drone.account_motion(step)
            flight.world.advance(now)
            if flight.capture and step >= 0.5:
                batch = drone.camera.capture_batch(
                    drone.device_id, flight.world, drone.position, now,
                    duration_s=step)
                flight.batches += 1
                if flight.on_batch is not None:
                    flight.on_batch(batch)
        live = [flight for flight in flights if flight.drone.alive]
        vector = len(live) >= _VECTOR_MIN
        if vector:
            idx = np.array([flight.slot for flight in live], dtype=np.intp)
            px = self._px[idx]
            py = self._py[idx]
            dx = self._tx[idx] - px
            dy = self._ty[idx] - py
            dist = np.sqrt(dx * dx + dy * dy)
            done = dist < _EPS
            speed = self._speed[idx]
            step_s = np.minimum(1.0, dist / speed)
            step_m = speed * step_s
            # Done lanes never read their fraction; keep them finite.
            frac = np.minimum(1.0, step_m / np.where(done, 1.0, dist))
            new_x = px + frac * dx
            new_y = py + frac * dy
        cursor = 0
        for flight in flights:
            if not flight.drone.alive:
                # Legacy loop-top `while self.alive` break: the landed tick
                # was accounted above, no turn follows, the route ends now.
                self._complete(flight)
                continue
            if vector:
                if done[cursor]:
                    self._end_of_leg(flight)
                else:
                    self._advance_tick(flight, float(step_s[cursor]),
                                       float(new_x[cursor]),
                                       float(new_y[cursor]))
                cursor += 1
            else:
                self._step_or_finish(flight)

    def _step_or_finish(self, flight: _Flight) -> None:
        """Scalar twin of the vectorized phase-2 kinematics."""
        drone = flight.drone
        px, py = drone.position
        dx = self._tx[flight.slot] - px
        dy = self._ty[flight.slot] - py
        dist = math.sqrt(dx * dx + dy * dy)
        if dist < _EPS:
            self._end_of_leg(flight)
            return
        speed = drone.speed_mps
        step_s = min(1.0, dist / speed)
        step_m = speed * step_s
        frac = min(1.0, step_m / dist)
        self._advance_tick(flight, step_s, px + frac * dx, py + frac * dy)

    def _advance_tick(self, flight: _Flight, step_s: float,
                      new_x: float, new_y: float) -> None:
        # Position moves at arm time, before the wait — the legacy loop
        # updates `self.position` and then yields, so a capture at the
        # landing instant sees the already-moved position.
        flight.drone.position = (new_x, new_y)
        self._px[flight.slot] = new_x
        self._py[flight.slot] = new_y
        flight.pending_s = step_s
        self._arm(step_s, _TICK, flight, flight.gen)

    # -- leg boundaries ---------------------------------------------------
    def _end_of_leg(self, flight: _Flight) -> None:
        """Leg finished with the device alive: pay the turn penalty."""
        turn = flight.drone.constants.turn_time_s
        if turn > 0:
            self._arm(turn, _TURN, flight, flight.gen)
        else:
            self._next_leg(flight)

    def _end_turn(self, flight: _Flight) -> None:
        drone = flight.drone
        turn = drone.constants.turn_time_s
        # The turn completes (and is charged) even if the device died
        # mid-turn — exactly the legacy sequence.
        drone.account_motion(turn)
        flight.world.advance(self.env.now)
        self._next_leg(flight)

    def _next_leg(self, flight: _Flight) -> None:
        """Enter the next leg, mirroring ``fly_route``'s for-loop body."""
        drone = flight.drone
        waypoints = flight.waypoints
        while True:
            flight.wp_index += 1
            if flight.wp_index >= len(waypoints) or not drone.alive:
                self._complete(flight)
                return
            target = waypoints[flight.wp_index]
            self._tx[flight.slot], self._ty[flight.slot] = target
            px, py = drone.position
            dx = target[0] - px
            dy = target[1] - py
            dist = math.sqrt(dx * dx + dy * dy)
            if dist < _EPS:
                # Zero-length leg: no tick, but the turn still applies.
                turn = drone.constants.turn_time_s
                if turn > 0:
                    self._arm(turn, _TURN, flight, flight.gen)
                    return
                continue
            if not flight.capture and not drone.energy.strict:
                self._start_analytic(flight, target)
                return
            speed = drone.speed_mps
            step_s = min(1.0, dist / speed)
            step_m = speed * step_s
            frac = min(1.0, step_m / dist)
            self._advance_tick(flight, step_s, px + frac * dx,
                               py + frac * dy)
            return

    # -- analytic legs -----------------------------------------------------
    def _start_analytic(self, flight: _Flight, target: Point) -> None:
        """Integrate a capture-free leg as one event at its final tick.

        The per-tick trajectory is replayed *numerically* up front (same
        floats, same order as the legacy loop) so the arrival instant and
        final position are bit-identical; the per-tick energy draws are
        replayed at settlement, keeping the ledger's float accumulation
        sequence intact. Restricted to non-strict batteries because the
        draws land at the leg boundary rather than mid-leg, which would
        move a strict battery's depletion instant.
        """
        drone = flight.drone
        speed = drone.speed_mps
        px, py = drone.position
        tx, ty = target
        t = self.env.now
        steps: List[float] = []
        arrivals: List[float] = []
        positions: List[Point] = []
        while True:
            dx = tx - px
            dy = ty - py
            dist = math.sqrt(dx * dx + dy * dy)
            if dist < _EPS:
                break
            step_s = min(1.0, dist / speed)
            step_m = speed * step_s
            frac = min(1.0, step_m / dist)
            px = px + frac * dx
            py = py + frac * dy
            t = t + step_s
            steps.append(step_s)
            arrivals.append(t)
            positions.append((px, py))
        flight.leg_steps = steps
        flight.leg_arrivals = arrivals
        flight.leg_positions = positions
        flight.leg_started = self.env.now
        flight.gen += 1
        self.analytic_legs += 1
        drone._fail_hook = lambda: self._truncate_analytic(flight)
        self._arm(arrivals[-1] - self.env.now, _SETTLE, flight, flight.gen)

    def _truncate_analytic(self, flight: _Flight) -> None:
        """Device failed mid-leg: cut the analytic leg at the tick boundary.

        Called synchronously from :meth:`EdgeDevice.fail`. The legacy loop
        lets the in-flight tick land (accounting included) before the
        alive check breaks it, so the leg is truncated at the first tick
        arrival at or after the failure instant.
        """
        flight.drone._fail_hook = None
        arrivals = flight.leg_arrivals
        cut = min(bisect_left(arrivals, self.env.now), len(arrivals) - 1)
        flight.leg_steps = flight.leg_steps[:cut + 1]
        flight.leg_arrivals = arrivals[:cut + 1]
        flight.leg_positions = flight.leg_positions[:cut + 1]
        flight.gen += 1
        self._arm(arrivals[cut] - self.env.now, _SETTLE, flight, flight.gen)

    def _settle_leg(self, flight: _Flight) -> None:
        drone = flight.drone
        drone._fail_hook = None
        if flight.trace:
            # Synthesized span at the closed-form instants: the whole leg
            # was integrated up front, so start/end are already exact.
            flight.trace.emit("analytic_leg", "edge", flight.leg_started,
                              self.env.now, ticks=len(flight.leg_steps))
        for step_s in flight.leg_steps:
            drone.account_motion(step_s)
        flight.world.advance(self.env.now)
        new_x, new_y = flight.leg_positions[-1]
        drone.position = (new_x, new_y)
        self._px[flight.slot] = new_x
        self._py[flight.slot] = new_y
        flight.leg_steps = None
        flight.leg_arrivals = None
        flight.leg_positions = None
        if drone.alive:
            self._end_of_leg(flight)
        else:
            self._complete(flight)

    # -- heartbeats --------------------------------------------------------
    def _do_beat(self, loop: _BeatLoop) -> None:
        device = loop.device
        if not device.alive:
            return  # legacy `while device.alive` loop exit: beat stops
        swarm = loop.swarm
        beat = Heartbeat(
            device_id=device.device_id,
            time=self.env.now,
            battery_fraction=device.energy.remaining_fraction)
        sinks = swarm._beat_sinks
        if sinks:
            for sink in sinks:
                sink(beat)
        else:
            swarm.heartbeat_bus.put(beat)
        self._arm(swarm.control.heartbeat_period_s, _BEAT, loop, 0)

    # -- completion --------------------------------------------------------
    def _complete(self, flight: _Flight) -> None:
        flight.gen += 1
        flight.drone._fail_hook = None
        self._free.append(flight.slot)
        flight.trace.close(self.env.now, batches=flight.batches)
        flight.event.succeed(flight.batches)
