"""Drone model (Parrot AR. Drone 2.0, section 2.1).

A drone flies a waypoint route at constant speed, captures one
:class:`~repro.edge.sensors.FrameBatch` per second while airborne, and
samples its telemetry sensors. The batch callback is how the platform layer
decides what happens to the data (upload to the cloud, process on-board, or
HiveMind's hybrid split) without the drone knowing about platforms.
"""

from __future__ import annotations

import math
from typing import Callable, Generator, List, Optional, Tuple

import numpy as np

from ..config import DroneConstants
from ..sim import Environment
from ..sim.accounting import tally
from .device import EdgeDevice
from .field import FieldWorld
from .sensors import Camera, FrameBatch, SensorSuite

__all__ = ["Drone"]

Point = Tuple[float, float]
BatchCallback = Callable[[FrameBatch], None]


class Drone(EdgeDevice):
    """A camera drone."""

    def __init__(self, env: Environment, device_id: str,
                 constants: DroneConstants,
                 rng: Optional[np.random.Generator] = None,
                 strict_battery: bool = False,
                 frame_mb: Optional[float] = None,
                 fps: Optional[float] = None):
        super().__init__(
            env, device_id,
            cpu_cores=constants.cpu_cores,
            battery_wh=constants.battery_wh,
            motion_power_w=constants.motion_power_w,
            compute_power_w=constants.compute_power_w,
            compute_idle_w=constants.compute_idle_w,
            radio_tx_w=constants.radio_tx_w,
            radio_rx_w=constants.radio_rx_w,
            radio_idle_w=constants.radio_idle_w,
            cloud_to_edge_slowdown=constants.cloud_to_edge_slowdown,
            rng=rng, strict_battery=strict_battery)
        self.constants = constants
        self.speed_mps = constants.speed_mps
        self.camera = Camera(
            fps=fps if fps is not None else constants.frames_per_second,
            frame_mb=frame_mb if frame_mb is not None else constants.frame_mb,
            fov_width_m=constants.fov_width_m,
            fov_depth_m=constants.fov_depth_m)
        self.sensors = SensorSuite(rng) if rng is not None else None

    def fly_route(self, waypoints: List[Point], world: FieldWorld,
                  on_batch: Optional[BatchCallback] = None,
                  capture: bool = True) -> Generator:
        """Process: fly the route, capturing one frame batch per second.

        Returns the number of batches captured. Stops immediately if the
        drone fails mid-flight.
        """
        if not waypoints:
            return 0
        batches = 0
        self.position = waypoints[0]
        for target in waypoints[1:]:
            if not self.alive:
                break
            batches += yield from self._fly_leg(
                target, world, on_batch, capture)
            # Turn penalty between legs.
            if self.alive and self.constants.turn_time_s > 0:
                tally("edge", 1)
                yield self.env.timeout(self.constants.turn_time_s)
                self.account_motion(self.constants.turn_time_s)
                # Keep the world clock current across the turn so the
                # first capture of the next leg doesn't see a stale field.
                world.advance(self.env.now)
        return batches

    def _fly_leg(self, target: Point, world: FieldWorld,
                 on_batch: Optional[BatchCallback],
                 capture: bool) -> Generator:
        """Fly one straight leg in 1-second ticks, capturing per tick."""
        batches = 0
        while self.alive:
            dx = target[0] - self.position[0]
            dy = target[1] - self.position[1]
            # sqrt-of-squares rather than math.hypot: both are correctly
            # rounded for these magnitudes, but only this form matches the
            # vectorized engine's np.sqrt(dx*dx + dy*dy) bit-for-bit.
            distance = math.sqrt(dx * dx + dy * dy)
            if distance < 1e-9:
                break
            step_s = min(1.0, distance / self.speed_mps)
            step_m = self.speed_mps * step_s
            fraction = min(1.0, step_m / distance)
            self.position = (self.position[0] + fraction * dx,
                             self.position[1] + fraction * dy)
            tally("edge", 1)
            yield self.env.timeout(step_s)
            self.account_motion(step_s)
            world.advance(self.env.now)
            if capture and step_s >= 0.5:
                batch = self.camera.capture_batch(
                    self.device_id, world, self.position, self.env.now,
                    duration_s=step_s)
                batches += 1
                if on_batch is not None:
                    on_batch(batch)
        return batches

    def hover(self, seconds: float) -> Generator:
        """Process: hold position (still burns motion power)."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        tally("edge", 1)
        yield self.env.timeout(seconds)
        self.account_motion(seconds)
