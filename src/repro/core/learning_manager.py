"""Continuous-learning manager (paper section 4.6).

Maps the DSL's ``Learn(task, scope)`` directive onto the learning
substrate: ``global`` scope retrains one shared model from the whole
swarm's decisions (HiveMind's centralized advantage), ``local`` keeps
per-device models, ``off`` disables retraining.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..dsl import DirectiveSet
from ..learning import IdentitySpace, OnlineRecognizer, RetrainingMode

__all__ = ["ContinuousLearningManager"]

_SCOPE_TO_MODE = {
    "global": RetrainingMode.SWARM,
    "local": RetrainingMode.SELF,
    "off": RetrainingMode.NONE,
}


class ContinuousLearningManager:
    """Owns the recognizers behind every Learn-annotated task."""

    def __init__(self, device_ids: List[str],
                 rng: np.random.Generator,
                 sensor_noise: float = 0.45,
                 pretrain_noise: float = 0.6):
        if not device_ids:
            raise ValueError("need at least one device")
        self.device_ids = list(device_ids)
        self.rng = rng
        self.sensor_noise = sensor_noise
        self.pretrain_noise = pretrain_noise
        self._recognizers: Dict[str, OnlineRecognizer] = {}

    @staticmethod
    def mode_for_scope(scope: str) -> RetrainingMode:
        mode = _SCOPE_TO_MODE.get(scope.lower())
        if mode is None:
            raise ValueError(f"unknown learning scope {scope!r}")
        return mode

    def register_task(self, task_name: str, space: IdentitySpace,
                      directives: Optional[DirectiveSet] = None,
                      default_scope: str = "off") -> OnlineRecognizer:
        """Create the recognizer for a task per its Learn directive."""
        scope = default_scope
        if directives is not None:
            scope = directives.learning.get(task_name, default_scope)
        recognizer = OnlineRecognizer(
            space, self.device_ids, self.mode_for_scope(scope),
            rng=self.rng,
            sensor_noise=self.sensor_noise,
            pretrain_noise=self.pretrain_noise)
        self._recognizers[task_name] = recognizer
        return recognizer

    def recognizer_for(self, task_name: str) -> OnlineRecognizer:
        recognizer = self._recognizers.get(task_name)
        if recognizer is None:
            raise KeyError(f"no recognizer registered for {task_name!r}")
        return recognizer

    @property
    def task_names(self) -> List[str]:
        return sorted(self._recognizers)
