"""Monitoring: worker monitors on every server, edge monitors per device.

HiveMind deploys a lightweight worker monitor on each server that
periodically samples active-function performance and server utilization
(section 4.3); an edge monitor tracks device status. The paper verifies the
monitoring overhead is negligible (<0.1% tail latency, <0.15% throughput) —
the model charges that overhead explicitly so the claim is testable.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from ..cluster import Cluster, Server
from ..config import ControlConstants
from ..edge import Swarm
from ..sim import Environment
from ..telemetry import MetricRegistry

__all__ = ["WorkerMonitor", "EdgeMonitor", "MonitoringSystem"]


class WorkerMonitor:
    """Per-server utilization/performance sampler."""

    def __init__(self, env: Environment, server: Server,
                 registry: MetricRegistry,
                 period_s: float = 1.0):
        if period_s <= 0:
            raise ValueError("period must be positive")
        self.env = env
        self.server = server
        self.registry = registry
        self.period_s = period_s
        self.samples = 0
        self._process = env.process(self._run())

    def _run(self) -> Generator:
        while True:
            self.registry.add(
                f"util.{self.server.server_id}",
                self.server.utilization, time=self.env.now)
            self.samples += 1
            yield self.env.timeout(self.period_s)

    def latest_utilization(self) -> float:
        series = self.registry.series(f"util.{self.server.server_id}")
        return series.values[-1] if len(series) else 0.0


class EdgeMonitor:
    """Device status sampler (battery, liveness)."""

    def __init__(self, env: Environment, swarm: Swarm,
                 registry: MetricRegistry, period_s: float = 1.0):
        if period_s <= 0:
            raise ValueError("period must be positive")
        self.env = env
        self.swarm = swarm
        self.registry = registry
        self.period_s = period_s
        self._process = env.process(self._run())

    def _run(self) -> Generator:
        while True:
            alive = len(self.swarm.alive_devices)
            self.registry.add("swarm.alive", alive, time=self.env.now)
            batteries = [d.energy.remaining_fraction
                         for d in self.swarm.alive_devices]
            if batteries:
                self.registry.add("swarm.battery_min", min(batteries),
                                  time=self.env.now)
            yield self.env.timeout(self.period_s)


class MonitoringSystem:
    """All monitors for one deployment, plus the overhead accounting."""

    def __init__(self, env: Environment, cluster: Cluster,
                 swarm: Optional[Swarm] = None,
                 constants: Optional[ControlConstants] = None):
        self.env = env
        self.constants = constants or ControlConstants()
        self.registry = MetricRegistry()
        self.worker_monitors: Dict[str, WorkerMonitor] = {
            server_id: WorkerMonitor(
                env, server, self.registry,
                period_s=self.constants.monitor_period_s)
            for server_id, server in cluster.servers.items()
        }
        self.edge_monitor = (
            EdgeMonitor(env, swarm, self.registry,
                        period_s=self.constants.monitor_period_s)
            if swarm is not None else None)

    def overhead_factor(self) -> float:
        """Latency inflation the monitoring imposes (paper: <0.1%)."""
        return 1.0 + self.constants.monitor_overhead_fraction

    def least_utilized_server(self) -> str:
        """Scheduler helper: the server with the lowest last sample."""
        best_id, best_value = None, float("inf")
        for server_id, monitor in sorted(self.worker_monitors.items()):
            value = monitor.latest_utilization()
            if value < best_value:
                best_id, best_value = server_id, value
        if best_id is None:
            raise RuntimeError("no worker monitors registered")
        return best_id
