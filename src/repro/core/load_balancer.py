"""Work distribution across devices (part of the HiveMind controller).

The controller's load balancer partitions available work across all
devices (section 4.2). Round-robin is the DSL default
(``load_balancer='round robin'`` in Listing 3); least-loaded picks the
device with the fewest outstanding items; weighted splits proportionally
to remaining battery.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..edge import EdgeDevice

__all__ = ["LoadBalancer"]

POLICIES = ("round_robin", "least_loaded", "battery_weighted")


class LoadBalancer:
    """Assigns work items to alive devices under a pluggable policy."""

    def __init__(self, policy: str = "round_robin"):
        if policy not in POLICIES:
            raise ValueError(
                f"unknown policy {policy!r}; valid: {POLICIES}")
        self.policy = policy
        self._next = 0
        self.outstanding: Dict[str, int] = {}

    def _alive(self, devices: Sequence[EdgeDevice]) -> List[EdgeDevice]:
        alive = [d for d in devices if d.alive]
        if not alive:
            raise ValueError("no alive devices to balance across")
        return alive

    def assign(self, devices: Sequence[EdgeDevice]) -> EdgeDevice:
        """Pick the device for the next work item."""
        alive = self._alive(devices)
        if self.policy == "round_robin":
            chosen = alive[self._next % len(alive)]
            self._next += 1
        elif self.policy == "least_loaded":
            chosen = min(alive, key=lambda d: (
                self.outstanding.get(d.device_id, 0), d.device_id))
        else:  # battery_weighted: most remaining battery first
            chosen = max(alive, key=lambda d: (
                d.energy.remaining_fraction, d.device_id))
        self.outstanding[chosen.device_id] = \
            self.outstanding.get(chosen.device_id, 0) + 1
        return chosen

    def complete(self, device_id: str) -> None:
        """Mark one outstanding item on a device as done."""
        count = self.outstanding.get(device_id, 0)
        if count <= 0:
            raise ValueError(
                f"device {device_id!r} has no outstanding work")
        self.outstanding[device_id] = count - 1

    def split(self, n_items: int,
              devices: Sequence[EdgeDevice]) -> Dict[str, int]:
        """Partition ``n_items`` across devices per the policy."""
        if n_items < 0:
            raise ValueError("item count must be non-negative")
        alive = self._alive(devices)
        shares = {d.device_id: 0 for d in alive}
        if self.policy == "battery_weighted":
            total = sum(d.energy.remaining_fraction for d in alive)
            if total > 0:
                assigned = 0
                for device in alive[:-1]:
                    share = round(n_items *
                                  device.energy.remaining_fraction / total)
                    shares[device.device_id] = share
                    assigned += share
                shares[alive[-1].device_id] = n_items - assigned
                return shares
        base, remainder = divmod(n_items, len(alive))
        for index, device in enumerate(alive):
            shares[device.device_id] = base + (1 if index < remainder else 0)
        return shares
