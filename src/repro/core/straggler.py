"""Straggler mitigation (paper section 4.6).

HiveMind tracks function progress; a function running past the 90th
percentile of its job's history is flagged and respawned on a new server,
and whichever replica finishes first wins. Servers that repeatedly produce
stragglers go on probation for a few minutes.

:class:`StragglerMitigator` wraps the serverless platform's ``invoke``: it
keeps per-function latency history, arms a watchdog at the p90 threshold,
launches a duplicate when the watchdog fires, and returns the earliest
completion.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from ..config import ControlConstants
from ..serverless import Invocation, InvocationRequest, OpenWhiskPlatform
from ..sim import Environment
from ..telemetry import MetricSeries

__all__ = ["StragglerMitigator"]


class StragglerMitigator:
    """p90 watchdog + duplicate-launch wrapper around a platform."""

    #: History needed before the watchdog arms (too little history makes
    #: p90 meaningless and would duplicate half the early tasks).
    MIN_HISTORY = 20
    #: Stragglers from one server within the window before probation.
    PROBATION_THRESHOLD = 3
    #: Multiplier on the p90 before the watchdog fires: by construction
    #: ~10% of healthy tasks exceed the p90, so a bare threshold would
    #: duplicate a tenth of all work (the paper notes the exact percentile
    #: is tuned per job importance).
    THRESHOLD_SLACK = 1.5

    def __init__(self, env: Environment, platform: OpenWhiskPlatform,
                 constants: Optional[ControlConstants] = None,
                 harden_races: bool = False):
        self.env = env
        self.platform = platform
        self.constants = constants or ControlConstants()
        #: Arm the race-hygiene fixes: strike the server that actually ran
        #: the losing primary (instead of the legacy scan over completed
        #: invocations, which misattributes under concurrency) and cancel
        #: the losing replica instead of letting it hold a container — and
        #: its memory — for the rest of a possibly very slow straggling
        #: execution. Off by default: both change which servers go on
        #: probation and hence the simulation's event stream, and the
        #: fault-free figures are pinned byte-for-byte; chaos runs arm
        #: them together with the rest of the recovery machinery.
        self.harden_races = harden_races
        self._history: Dict[str, MetricSeries] = {}
        self._strikes: Dict[str, int] = {}
        self.duplicates_launched = 0
        self.stragglers_detected = 0

    def _series(self, function_name: str) -> MetricSeries:
        series = self._history.get(function_name)
        if series is None:
            series = MetricSeries(function_name)
            self._history[function_name] = series
        return series

    def threshold_for(self, function_name: str) -> Optional[float]:
        """The straggler threshold, or None while history is thin."""
        series = self._series(function_name)
        if len(series) < self.MIN_HISTORY:
            return None
        return (series.percentile(self.constants.straggler_percentile) *
                self.THRESHOLD_SLACK)

    def _record(self, invocation: Invocation) -> None:
        self._series(invocation.spec.name).add(invocation.latency_s)

    def _strike(self, server_id: str) -> None:
        """Count a straggler against its server; probation on repeat."""
        if not server_id:
            return
        self._strikes[server_id] = self._strikes.get(server_id, 0) + 1
        if self._strikes[server_id] >= self.PROBATION_THRESHOLD:
            for invoker in self.platform.invokers:
                if invoker.server.server_id == server_id:
                    invoker.server.put_on_probation(
                        self.constants.probation_s)
            self._strikes[server_id] = 0

    def invoke(self, request: InvocationRequest) -> Generator:
        """Process: invoke with straggler detection; returns the winning
        invocation."""
        threshold = self.threshold_for(request.spec.name)
        primary = self.env.process(self.platform.invoke(request))
        if threshold is None:
            result = yield primary
            self._record(result)
            return result
        watchdog = self.env.timeout(threshold)
        outcome = yield self.env.any_of([primary, watchdog])
        if primary in outcome:
            result = outcome[primary]
            self._record(result)
            return result
        # Straggler: fire a duplicate on a different server and keep both
        # racing; use whichever finishes first (section 4.6).
        self.stragglers_detected += 1
        self.duplicates_launched += 1
        if request.trace:
            request.trace.emit("straggler_detected", "serverless",
                               self.env.now, self.env.now,
                               threshold_s=threshold)
        duplicate_request = InvocationRequest(
            spec=request.spec, service_s=request.service_s,
            input_mb=request.input_mb, output_mb=request.output_mb,
            parent=request.parent,
            colocate_with_parent=False,  # new server on purpose
            priority=request.priority,
            trace=request.trace)
        duplicate = self.env.process(
            self.platform.invoke(duplicate_request))
        final = yield self.env.any_of([primary, duplicate])
        winner: Invocation = next(iter(final.values()))
        self._record(winner)
        if primary in final:
            # The duplicate lost; the primary's server was fine after all.
            loser_request = duplicate_request
            loser_server = None
        else:
            # The duplicate won; the primary's placement was the straggler.
            # The request carries its own in-flight invocation record, so
            # the strike lands on the server that actually ran it (not on
            # whichever server last finished a same-named function).
            loser_request = request
            loser_server = (self._primary_server_hint(request)
                            if self.harden_races
                            else self._legacy_server_hint(request))
        if loser_server:
            self._strike(loser_server)
        self._reap_loser(loser_request)
        return winner

    def _reap_loser(self, loser_request: InvocationRequest) -> None:
        """Cancel the losing replica (when armed): its result is redundant,
        and letting it run to completion holds a container (and its
        memory) hostage for the rest of a possibly very slow straggling
        execution. Best-effort — a loser still upstream of its invoker
        just drains."""
        if not self.harden_races:
            return
        loser = loser_request.inflight
        if loser is None or loser.t_complete:
            return  # nothing in flight, or it finished in the same instant
        self.platform.cancel_invocation(loser)

    def _primary_server_hint(self, request: InvocationRequest
                             ) -> Optional[str]:
        """The server the primary actually landed on, once placed."""
        invocation = request.inflight
        if invocation is not None and invocation.server_id:
            return invocation.server_id
        return None

    def _legacy_server_hint(self, request: InvocationRequest
                            ) -> Optional[str]:
        """The original best-effort attribution: the most recent completed
        same-named invocation's server. Misattributes under concurrent
        invocations of one function, but the pinned fault-free figures
        encode the probation schedule it produces, so it stays the
        default until ``harden_races`` is armed."""
        for invocation in reversed(self.platform.invocations):
            if invocation.spec.name == request.spec.name and \
                    invocation.server_id:
                return invocation.server_id
        return None
