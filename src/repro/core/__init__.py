"""HiveMind core: the centralized controller and its subsystems."""

from .controller import HiveMindController
from .fault_tolerance import FailureDetector
from .learning_manager import ContinuousLearningManager
from .load_balancer import LoadBalancer
from .monitoring import EdgeMonitor, MonitoringSystem, WorkerMonitor
from .placement_manager import RuntimePlacementManager
from .straggler import StragglerMitigator

__all__ = [
    "HiveMindController",
    "LoadBalancer",
    "MonitoringSystem",
    "WorkerMonitor",
    "EdgeMonitor",
    "StragglerMitigator",
    "FailureDetector",
    "ContinuousLearningManager",
    "RuntimePlacementManager",
]
