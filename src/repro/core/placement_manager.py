"""Runtime placement management (paper section 4.2).

The compiler hands the controller a ranked list of execution models; the
user's constraints picked the initial one. At runtime HiveMind monitors the
measured metrics and, when goals are missed, remaps to the next-best model —
at task granularity only (a partially-completed task never migrates).
"""

from __future__ import annotations

from typing import List, Optional

from ..dsl import CompilationResult, CompiledPlan, Constraint, PlanEstimate

__all__ = ["RuntimePlacementManager"]


class RuntimePlacementManager:
    """Tracks the active plan and remaps when measured goals are missed."""

    #: Consecutive violating measurements before a remap (debounce).
    VIOLATION_WINDOW = 5

    def __init__(self, compilation: CompilationResult,
                 constraints: Optional[List[Constraint]] = None):
        self.compilation = compilation
        self.constraints = (list(constraints) if constraints is not None
                            else list(compilation.graph.constraints))
        self._index = compilation.plans.index(compilation.chosen)
        self._violations = 0
        self.remaps = 0

    @property
    def active_plan(self) -> CompiledPlan:
        return self.compilation.plans[self._index]

    @property
    def exhausted(self) -> bool:
        return self._index >= len(self.compilation.plans) - 1

    def _violates(self, latency_s: float, power_w: float) -> bool:
        measured = PlanEstimate(
            latency_s=latency_s,
            device_power_w=power_w,
            network_mbs=self.active_plan.estimate.network_mbs,
            cloud_core_demand=self.active_plan.estimate.cloud_core_demand,
            throughput_hz=self.active_plan.estimate.throughput_hz,
            feasible=True)
        return any(not c.satisfied_by(measured) for c in self.constraints)

    def observe(self, latency_s: float, power_w: float = 0.0) -> bool:
        """Feed one measurement; returns True when a remap happened."""
        if not self.constraints:
            return False
        if not self._violates(latency_s, power_w):
            self._violations = 0
            return False
        self._violations += 1
        if self._violations < self.VIOLATION_WINDOW or self.exhausted:
            return False
        # Remap to the next-ranked plan (task granularity: callers apply
        # the new placement only to tasks not yet started).
        self._index += 1
        self._violations = 0
        self.remaps += 1
        return True
