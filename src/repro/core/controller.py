"""The centralized HiveMind controller (paper sections 4.2-4.6).

Cloud-resident, with global visibility into cloud and edge resources. It
composes: a load balancer partitioning work across devices, the interface
to the serverless scheduler, the edge communication interface, the
monitoring system, straggler mitigation, heartbeat-based fault tolerance,
and the continuous-learning manager. Implemented as a centralized process
with hot standby copies that take over on failure (section 4.7).
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

import numpy as np

from ..cluster import Cluster
from ..config import PaperConstants
from ..edge import Swarm
from ..serverless import InvocationRequest, OpenWhiskPlatform
from ..sim import Environment
from .fault_tolerance import FailureDetector
from .learning_manager import ContinuousLearningManager
from .load_balancer import LoadBalancer
from .monitoring import MonitoringSystem
from .straggler import StragglerMitigator

__all__ = ["HiveMindController"]


class HiveMindController:
    """Global coordinator for one HiveMind deployment."""

    def __init__(self, env: Environment, cluster: Cluster,
                 platform: OpenWhiskPlatform,
                 swarm: Optional[Swarm] = None,
                 constants: Optional[PaperConstants] = None,
                 rng: Optional[np.random.Generator] = None,
                 enable_monitoring: bool = True,
                 enable_straggler_mitigation: bool = True,
                 enable_fault_tolerance: bool = True):
        self.env = env
        self.cluster = cluster
        self.platform = platform
        self.swarm = swarm
        self.constants = constants or PaperConstants()
        control = self.constants.control
        self.load_balancer = LoadBalancer(control.load_balance_policy)
        self.monitoring = (
            MonitoringSystem(env, cluster, swarm, control)
            if enable_monitoring else None)
        self.straggler = (
            StragglerMitigator(env, platform, control)
            if enable_straggler_mitigation else None)
        self.failure_detector: Optional[FailureDetector] = None
        if enable_fault_tolerance and swarm is not None:
            swarm.start_heartbeats()
            self.failure_detector = FailureDetector(
                env, swarm, control, on_failure=self._on_device_failure)
        self.learning = (
            ContinuousLearningManager(sorted(swarm.devices), rng)
            if (swarm is not None and rng is not None) else None)
        #: Hot standby controllers (section 4.7: two hot standbys).
        self.standbys_remaining = control.hot_standbys
        self.failovers = 0
        self.route_updates: List[str] = []

    # -- dispatch ------------------------------------------------------------
    def dispatch(self, request: InvocationRequest) -> Generator:
        """Process: run one cloud task through straggler mitigation."""
        if self.straggler is not None:
            invocation = yield from self.straggler.invoke(request)
        else:
            invocation = yield from self.platform.invoke(request)
        if self.monitoring is not None:
            # Monitoring's (verified-negligible) latency overhead.
            extra = invocation.latency_s * \
                (self.monitoring.overhead_factor() - 1.0)
            yield self.env.timeout(extra)
        return invocation

    # -- fault tolerance ----------------------------------------------------
    def _on_device_failure(self, device_id: str,
                           new_assignment: Dict[str, list]) -> None:
        """Record which devices received updated routes (Fig 10)."""
        heirs = [d for d, regions in new_assignment.items()
                 if len(regions) > 1]
        self.route_updates.extend(heirs)

    # -- controller redundancy ------------------------------------------------
    def fail_over(self) -> Generator:
        """Process: primary controller crash -> hot standby takes over.

        The standby already mirrors state, so the takeover pause is one
        heartbeat period (detection) — far below a cold controller restart.
        """
        if self.standbys_remaining <= 0:
            raise RuntimeError("no hot standby controllers remain")
        yield self.env.timeout(self.constants.control.heartbeat_period_s)
        self.standbys_remaining -= 1
        self.failovers += 1
        return self.standbys_remaining
