"""Edge fault tolerance: heartbeat detection + load repartitioning.

Devices heartbeat once per second; miss three seconds of beats and the
controller declares the device failed (section 4.6) and repartitions its
assigned area among neighbouring devices with sufficient battery (Fig 10),
pushing updated routes to the heirs.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional

from ..config import ControlConstants
from ..edge import Swarm
from ..routing import repartition_on_failure
from ..sim import Environment

__all__ = ["FailureDetector"]

FailureCallback = Callable[[str, Dict[str, list]], None]


class FailureDetector:
    """Consumes the swarm heartbeat bus and detects silent devices."""

    #: Minimum battery fraction a neighbour needs to inherit work.
    MIN_HEIR_BATTERY = 0.10

    def __init__(self, env: Environment, swarm: Swarm,
                 constants: Optional[ControlConstants] = None,
                 on_failure: Optional[FailureCallback] = None):
        self.env = env
        self.swarm = swarm
        self.constants = constants or swarm.control
        self.on_failure = on_failure
        # Seed with the subscription instant, not 0.0: a detector created
        # (or a device joining) late in the mission would otherwise see a
        # stale epoch-zero "beat" and declare every device dead on its
        # first check before a single real heartbeat could land.
        self.last_beat: Dict[str, float] = {
            device_id: env.now for device_id in swarm.devices}
        self.failed: List[str] = []
        # Observe beats synchronously instead of running a consumer process
        # over the heartbeat bus: each update lands at the same simulated
        # instant the bus hand-off would deliver it, without the per-beat
        # put/get event traffic.
        swarm.subscribe_heartbeats(self._observe)
        self._checker = env.process(self._check())

    def _observe(self, beat) -> None:
        self.last_beat[beat.device_id] = beat.time

    def watch(self, device_id: str) -> None:
        """Start monitoring a device that joined after construction.

        The grace clock starts now — the late joiner gets a full timeout
        window to produce its first heartbeat."""
        if device_id not in self.last_beat:
            self.last_beat[device_id] = self.env.now

    def _check(self) -> Generator:
        timeout = self.constants.heartbeat_timeout_s
        while True:
            yield self.env.timeout(self.constants.heartbeat_period_s)
            for device_id, last in list(self.last_beat.items()):
                if device_id in self.failed:
                    continue
                if self.env.now - last > timeout:
                    self._declare_failed(device_id)

    def _declare_failed(self, device_id: str) -> None:
        self.failed.append(device_id)
        device = self.swarm.devices[device_id]
        # Route through fail() so in-flight work reacts (the vectorized
        # engine truncates an armed analytic leg from the fail hook); the
        # controller stops dispatching to it either way.
        device.fail()
        new_assignment = self._repartition(device_id)
        if self.on_failure is not None:
            self.on_failure(device_id, new_assignment)

    def _repartition(self, device_id: str) -> Dict[str, list]:
        """Give the failed device's region(s) to healthy neighbours."""
        if device_id not in self.swarm.regions:
            return {d: r for d, r in self.swarm.regions.items()
                    if d != device_id}
        # Flatten to a single-region view for the geometric repartition,
        # skipping heirs whose battery is too low (section 4.6: "assuming
        # they have sufficient battery").
        flat = {d: regions[0] for d, regions in self.swarm.regions.items()
                if regions and self._eligible(d, device_id)}
        if not any(d != device_id for d in flat):
            # Every heir is below the battery floor. An uncovered region
            # is worse than a tired heir, so relax the floor to "alive"
            # rather than silently dropping the dead device's area.
            flat = {d: regions[0]
                    for d, regions in self.swarm.regions.items()
                    if regions and (d == device_id or
                                    self.swarm.devices[d].alive)}
        if device_id not in flat:
            flat[device_id] = self.swarm.regions[device_id][0]
        if len(flat) <= 1:
            new_assignment = {d: list(r) for d, r in
                              self.swarm.regions.items() if d != device_id}
        else:
            new_assignment = repartition_on_failure(flat, device_id)
            # The geometric repartition works on the single-region flat
            # view; restore everything it left out so no area is dropped:
            # the failed device's extra regions (inherited from earlier
            # failures) go to its heirs round-robin, and every survivor
            # keeps the tail of its own region list.
            heirs = sorted(d for d, regions in new_assignment.items()
                           if len(regions) > 1)
            for index, region in enumerate(
                    self.swarm.regions[device_id][1:]):
                new_assignment[heirs[index % len(heirs)]].append(region)
            for d, regions in self.swarm.regions.items():
                if d == device_id:
                    continue
                if d in new_assignment:
                    new_assignment[d].extend(regions[1:])
                else:
                    # Devices excluded for low battery keep their regions.
                    new_assignment[d] = list(regions)
        self.swarm.regions = {d: list(regions)
                              for d, regions in new_assignment.items()}
        return new_assignment

    def _eligible(self, device_id: str, failed_id: str) -> bool:
        if device_id == failed_id:
            return True  # the failed device itself must be in the map
        device = self.swarm.devices[device_id]
        return (device.alive and
                device.energy.remaining_fraction > self.MIN_HEIR_BATTERY)

    @property
    def alive_count(self) -> int:
        return len(self.swarm.devices) - len(self.failed)
