"""DSL relationship operations and optional management directives.

Paper Listing 1 (relationships): ``Parallel``, ``Overlap``, ``Serial``,
``Synchronize``. Paper Listing 2 (management): ``Schedule``, ``Isolate``,
``Place``, ``Restore``, ``Learn``, ``Persist``. Implemented as small helper
functions/records that annotate a :class:`~repro.dsl.ast.TaskGraph`; the
compiler and the HiveMind controller consume the annotations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .ast import Task, TaskGraph

__all__ = [
    "Parallel",
    "Serial",
    "Overlap",
    "Synchronize",
    "DirectiveSet",
    "Schedule",
    "Isolate",
    "Place",
    "Restore",
    "Learn",
    "Persist",
]


def _require_tasks(graph: TaskGraph, *names: str) -> None:
    for name in names:
        if name not in graph:
            raise KeyError(f"unknown task {name!r} in graph {graph.name!r}")


def Parallel(graph: TaskGraph, task_a: str, task_b: str) -> None:
    """Declare that two tasks may execute fully in parallel."""
    _require_tasks(graph, task_a, task_b)
    if (task_a, task_b) in graph.serial_pairs or \
            (task_b, task_a) in graph.serial_pairs:
        raise ValueError(
            f"tasks {task_a!r}/{task_b!r} already declared Serial")
    graph.parallel_pairs.append((task_a, task_b))


def Serial(graph: TaskGraph, task_a: str, task_b: str) -> None:
    """Declare that two tasks must never overlap."""
    _require_tasks(graph, task_a, task_b)
    if (task_a, task_b) in graph.parallel_pairs or \
            (task_b, task_a) in graph.parallel_pairs:
        raise ValueError(
            f"tasks {task_a!r}/{task_b!r} already declared Parallel")
    graph.serial_pairs.append((task_a, task_b))


def Overlap(graph: TaskGraph, task_a: str, task_b: str) -> None:
    """Declare that two tasks may partially overlap."""
    _require_tasks(graph, task_a, task_b)
    graph.overlap_pairs.append((task_a, task_b))


def Synchronize(graph: TaskGraph, task: str, condition: str) -> None:
    """Install a synchronization barrier on a task (e.g. 'all' devices
    must deliver before the task runs — Scenario B's deduplication)."""
    _require_tasks(graph, task)
    if not condition:
        raise ValueError("synchronization condition must be non-empty")
    graph.sync_points[task] = condition


@dataclass
class DirectiveSet:
    """Per-application management directives (paper Listing 2)."""

    #: task -> scheduling priority (lower = more urgent).
    priorities: Dict[str, int] = field(default_factory=dict)
    #: tasks requiring a dedicated container (no colocation).
    isolated: List[str] = field(default_factory=list)
    #: task -> fixed tier ("edge" / "cloud"), optionally scoped
    #: ("edge:all" pins every device's instance).
    placements: Dict[str, str] = field(default_factory=dict)
    #: task -> fault-tolerance policy name.
    restore_policies: Dict[str, str] = field(default_factory=dict)
    #: task -> learning scope: "global" (swarm-wide), "local" (one
    #: device), or "off".
    learning: Dict[str, str] = field(default_factory=dict)
    #: tasks whose outputs go to persistent storage.
    persisted: List[str] = field(default_factory=list)


def Schedule(directives: DirectiveSet, graph: TaskGraph, task: str,
             priority: int = 0) -> None:
    """Attach a scheduling constraint / priority to a task."""
    _require_tasks(graph, task)
    directives.priorities[task] = priority


def Isolate(directives: DirectiveSet, graph: TaskGraph, task: str) -> None:
    """Require a dedicated container for a task."""
    _require_tasks(graph, task)
    if task not in directives.isolated:
        directives.isolated.append(task)


def Place(directives: DirectiveSet, graph: TaskGraph, task: str,
          where: str) -> None:
    """Pin a task to the edge or the cloud (e.g. ``'Edge:all'``)."""
    _require_tasks(graph, task)
    tier = where.lower().split(":")[0]
    if tier not in ("edge", "cloud"):
        raise ValueError(f"unknown placement {where!r}")
    directives.placements[task] = tier


def Restore(directives: DirectiveSet, graph: TaskGraph, task: str,
            policy: str = "repartition") -> None:
    """Select the fault-tolerance policy applied when a device running
    this task fails."""
    _require_tasks(graph, task)
    if policy not in ("repartition", "respawn", "ignore"):
        raise ValueError(f"unknown restore policy {policy!r}")
    directives.restore_policies[task] = policy


def Learn(directives: DirectiveSet, graph: TaskGraph, task: str,
          scope: str) -> None:
    """Enable/disable online retraining for a task's model.

    ``scope`` is ``'Global'`` (retrain from the whole swarm's decisions),
    ``'Local'`` (one device), or ``'Off'``.
    """
    _require_tasks(graph, task)
    normalized = scope.lower()
    if normalized not in ("global", "local", "off"):
        raise ValueError(f"unknown learning scope {scope!r}")
    directives.learning[task] = normalized


def Persist(directives: DirectiveSet, graph: TaskGraph, task: str) -> None:
    """Store the task's output in persistent storage."""
    _require_tasks(graph, task)
    if task not in directives.persisted:
        directives.persisted.append(task)
