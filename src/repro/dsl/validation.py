"""Task-graph validation.

Incorrect or inconsistent API/task definitions are a primary source of bugs
in multi-tier cloud/edge applications (section 4.1); HiveMind's compiler
front end rejects malformed graphs before synthesis. Checks:

- every referenced parent/child exists;
- parent/child lists are mutually consistent (an edge declared on either
  side is enough, but contradictions are impossible by construction);
- the graph is acyclic;
- every non-root task can receive its input (its parents produce output);
- relationship annotations reference existing tasks and do not contradict
  (Parallel vs Serial on the same pair is rejected at declaration time);
- directive placements do not contradict profile pinning.
"""

from __future__ import annotations

from typing import List, Optional

from .ast import TaskGraph
from .directives import DirectiveSet

__all__ = ["ValidationError", "validate_graph"]


class ValidationError(Exception):
    """The task graph or its directives are inconsistent."""


def validate_graph(graph: TaskGraph,
                   directives: Optional[DirectiveSet] = None) -> List[str]:
    """Validate; returns warnings, raises :class:`ValidationError`."""
    warnings: List[str] = []
    if len(graph) == 0:
        raise ValidationError(f"graph {graph.name!r} has no tasks")

    # Edge endpoints must exist.
    for parent, child in graph.edges():
        if parent not in graph:
            raise ValidationError(
                f"edge references unknown parent task {parent!r}")
        if child not in graph:
            raise ValidationError(
                f"edge references unknown child task {child!r}")

    # Acyclicity (topological_order raises on cycles).
    try:
        graph.topological_order()
    except ValueError as exc:
        raise ValidationError(str(exc)) from exc

    # Data-flow consistency: a child consuming data needs a producing parent.
    for task in graph.tasks:
        if task.data_in is not None and not graph.parents_of(task.name):
            # Roots read sensor inputs / initial maps — allowed, but warn
            # when the input name looks like another task's output.
            producers = [t.name for t in graph.tasks
                         if t.data_out_name == task.data_in and
                         t.name != task.name]
            if producers:
                warnings.append(
                    f"task {task.name!r} consumes {task.data_in!r} "
                    f"produced by {producers} but declares no parent")

    # Profile pinning vs directives.
    if directives is not None:
        for task_name, tier in directives.placements.items():
            profile = graph.task(task_name).profile
            if profile is None:
                continue
            if profile.edge_only and tier == "cloud":
                raise ValidationError(
                    f"task {task_name!r} is edge-only but placed in cloud")
            if profile.cloud_only and tier == "edge":
                raise ValidationError(
                    f"task {task_name!r} is cloud-only but placed at edge")
        for task_name in directives.isolated:
            if task_name not in graph:
                raise ValidationError(
                    f"Isolate references unknown task {task_name!r}")

    # Synchronization points must sit on join nodes or be trivially
    # satisfiable; a barrier on a root is almost surely a mistake.
    for task_name in graph.sync_points:
        if not graph.parents_of(task_name):
            warnings.append(
                f"synchronization barrier on root task {task_name!r}")

    return warnings
