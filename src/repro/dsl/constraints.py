"""User-facing performance/power/cost constraints and plan estimates.

In addition to the control flow, users specify the performance metrics the
application must meet — execution time, latency, throughput — and optionally
a cloud cost ceiling (section 4.1). HiveMind uses these to choose among the
synthesized execution models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

__all__ = [
    "PlanEstimate",
    "Constraint",
    "LatencyConstraint",
    "ExecTimeConstraint",
    "PowerConstraint",
    "CostConstraint",
    "ThroughputConstraint",
]


@dataclass(frozen=True)
class PlanEstimate:
    """Predicted behaviour of one execution model (per activation)."""

    #: Critical-path latency of one task-graph activation (seconds).
    latency_s: float
    #: Mean extra power draw per device above baseline motion (watts).
    device_power_w: float
    #: Aggregate edge-to-cloud bandwidth demand (MB/s).
    network_mbs: float
    #: Cloud core-seconds consumed per second (cost proxy).
    cloud_core_demand: float
    #: Sustainable activations per second per device.
    throughput_hz: float
    #: False when some resource is past saturation.
    feasible: bool = True


class Constraint:
    """Base: a predicate over :class:`PlanEstimate`."""

    def satisfied_by(self, estimate: PlanEstimate) -> bool:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class LatencyConstraint(Constraint):
    max_latency_s: float

    def __post_init__(self):
        if self.max_latency_s <= 0:
            raise ValueError("latency bound must be positive")

    def satisfied_by(self, estimate: PlanEstimate) -> bool:
        return estimate.feasible and estimate.latency_s <= self.max_latency_s

    def describe(self) -> str:
        return f"latency <= {self.max_latency_s}s"


@dataclass(frozen=True)
class ExecTimeConstraint(Constraint):
    """Bound on end-to-end activation time (the Listing 3
    ``constraint=[execTime='10s']``)."""

    max_exec_s: float

    def __post_init__(self):
        if self.max_exec_s <= 0:
            raise ValueError("execution-time bound must be positive")

    def satisfied_by(self, estimate: PlanEstimate) -> bool:
        return estimate.feasible and estimate.latency_s <= self.max_exec_s

    def describe(self) -> str:
        return f"exec time <= {self.max_exec_s}s"


@dataclass(frozen=True)
class PowerConstraint(Constraint):
    max_device_power_w: float

    def __post_init__(self):
        if self.max_device_power_w <= 0:
            raise ValueError("power bound must be positive")

    def satisfied_by(self, estimate: PlanEstimate) -> bool:
        return (estimate.feasible and
                estimate.device_power_w <= self.max_device_power_w)

    def describe(self) -> str:
        return f"device power <= {self.max_device_power_w}W"


@dataclass(frozen=True)
class CostConstraint(Constraint):
    """Ceiling on cloud resource usage (core-seconds per second)."""

    max_cloud_cores: float

    def __post_init__(self):
        if self.max_cloud_cores < 0:
            raise ValueError("cost bound must be non-negative")

    def satisfied_by(self, estimate: PlanEstimate) -> bool:
        return (estimate.feasible and
                estimate.cloud_core_demand <= self.max_cloud_cores)

    def describe(self) -> str:
        return f"cloud cores <= {self.max_cloud_cores}"


@dataclass(frozen=True)
class ThroughputConstraint(Constraint):
    min_throughput_hz: float

    def __post_init__(self):
        if self.min_throughput_hz <= 0:
            raise ValueError("throughput bound must be positive")

    def satisfied_by(self, estimate: PlanEstimate) -> bool:
        return (estimate.feasible and
                estimate.throughput_hz >= self.min_throughput_hz)

    def describe(self) -> str:
        return f"throughput >= {self.min_throughput_hz}/s"
