"""The HiveMind DSL: task and task-graph declarations (paper Listing 1/3).

Users declare *what* their application computes — tasks, their I/O, and the
control-flow edges — and HiveMind synthesizes the deployment. The Python
surface mirrors the paper's listings::

    graph = TaskGraph(constraints=[ExecTimeConstraint(10.0)])
    graph.add_task(Task("createRoute", data_in="map", data_out="route",
                        code="tasks/create_route.py",
                        children=["collectImage"]))
    ...

Profiles (:class:`TaskProfile`) carry the resource footprint the compiler
needs for placement estimation: service seconds on one cloud core, payload
sizes, intra-task parallelism, and pinning flags (a sensor-collection task
cannot run in the cloud).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = ["TaskProfile", "Stream", "Task", "TaskGraph", "Placement",
           "PLACEMENTS"]

#: Valid placement values for a task.
PLACEMENTS = ("cloud", "edge")


@dataclass(frozen=True)
class Stream:
    """A continuous data stream between tasks (paper section 4.1: the DSL
    supports both individual objects and data streams).

    A stream flows at ``rate_hz`` items of ``item_mb`` each; consumers see
    windows of ``window_s`` seconds. Declaring an edge's payload as a
    Stream tells the compiler to budget *continuous* bandwidth for the
    crossing and tells codegen to emit a subscription API instead of a
    request/response one.
    """

    name: str
    rate_hz: float
    item_mb: float
    window_s: float = 1.0

    def __post_init__(self):
        if not self.name:
            raise ValueError("stream name must be non-empty")
        if self.rate_hz <= 0:
            raise ValueError("stream rate must be positive")
        if self.item_mb < 0:
            raise ValueError("stream item size must be non-negative")
        if self.window_s <= 0:
            raise ValueError("stream window must be positive")

    @property
    def mbs(self) -> float:
        """Continuous bandwidth of the stream (MB/s)."""
        return self.rate_hz * self.item_mb

    @property
    def window_mb(self) -> float:
        """Payload a consumer receives per window."""
        return self.mbs * self.window_s


@dataclass(frozen=True)
class TaskProfile:
    """Resource footprint of one task (per activation)."""

    #: Median service seconds on one cloud core.
    cloud_service_s: float
    #: Input payload consumed per activation (MB).
    input_mb: float = 0.0
    #: Output payload produced per activation (MB).
    output_mb: float = 0.01
    #: Exploitable intra-task parallelism (1 = sequential).
    parallelism: int = 1
    #: Activations per second per device when the application runs.
    rate_hz: float = 1.0
    #: Lognormal sigma of the service-time distribution.
    service_sigma: float = 0.25
    #: True for tasks that physically must run on the device (sensor
    #: collection, actuation): the synthesizer never places them in the
    #: cloud ("meaningful" pruning, section 4.2).
    edge_only: bool = False
    #: True for tasks that only make sense with global state (e.g. a
    #: swarm-wide synchronization barrier aggregation); never placed at
    #: the edge.
    cloud_only: bool = False

    def __post_init__(self):
        if self.cloud_service_s < 0:
            raise ValueError("service time must be non-negative")
        if self.input_mb < 0 or self.output_mb < 0:
            raise ValueError("payload sizes must be non-negative")
        if self.parallelism < 1:
            raise ValueError("parallelism must be at least 1")
        if self.rate_hz <= 0:
            raise ValueError("rate must be positive")
        if self.edge_only and self.cloud_only:
            raise ValueError("a task cannot be both edge- and cloud-only")


@dataclass
class Task:
    """One node of the application task graph (paper Listing 1: Task).

    ``data_in``/``data_out`` are either names (individual objects) or
    :class:`Stream` declarations (continuous flows).
    """

    name: str
    data_in: Optional[object] = None
    data_out: Optional[object] = None
    code: str = ""
    profile: Optional[TaskProfile] = None
    parents: List[str] = field(default_factory=list)
    children: List[str] = field(default_factory=list)
    #: Free-form task arguments (speed, resolution, algorithm, ...) exactly
    #: as the paper's Listing 3 passes them.
    args: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        if not self.name:
            raise ValueError("task name must be non-empty")
        if self.name in self.parents or self.name in self.children:
            raise ValueError(f"task {self.name!r} cannot depend on itself")

    @property
    def output_stream(self) -> Optional[Stream]:
        return self.data_out if isinstance(self.data_out, Stream) else None

    @property
    def data_out_name(self) -> Optional[str]:
        if isinstance(self.data_out, Stream):
            return self.data_out.name
        return self.data_out


class TaskGraph:
    """The application's control flow (paper Listing 1: TaskGraph)."""

    def __init__(self, name: str = "app",
                 constraints: Optional[Iterable] = None):
        self.name = name
        self.constraints = list(constraints or [])
        self._tasks: Dict[str, Task] = {}
        #: Relationship annotations (Parallel/Serial/Overlap pairs and
        #: Synchronize points), filled by the directive helpers.
        self.parallel_pairs: List[Tuple[str, str]] = []
        self.serial_pairs: List[Tuple[str, str]] = []
        self.overlap_pairs: List[Tuple[str, str]] = []
        self.sync_points: Dict[str, str] = {}

    # -- construction ------------------------------------------------------
    def add_task(self, task: Task) -> Task:
        if task.name in self._tasks:
            raise ValueError(f"duplicate task {task.name!r}")
        self._tasks[task.name] = task
        return task

    def task(self, name: str) -> Task:
        found = self._tasks.get(name)
        if found is None:
            raise KeyError(f"unknown task {name!r}")
        return found

    def __contains__(self, name: str) -> bool:
        return name in self._tasks

    def __len__(self) -> int:
        return len(self._tasks)

    @property
    def tasks(self) -> List[Task]:
        return list(self._tasks.values())

    @property
    def task_names(self) -> List[str]:
        return list(self._tasks)

    def edges(self) -> List[Tuple[str, str]]:
        """(parent, child) pairs, derived from both directions and
        deduplicated."""
        seen = set()
        result: List[Tuple[str, str]] = []
        for task in self._tasks.values():
            for child in task.children:
                edge = (task.name, child)
                if edge not in seen:
                    seen.add(edge)
                    result.append(edge)
            for parent in task.parents:
                edge = (parent, task.name)
                if edge not in seen:
                    seen.add(edge)
                    result.append(edge)
        return result

    def roots(self) -> List[Task]:
        """Tasks with no parents (application entry points)."""
        have_parents = {child for _, child in self.edges()}
        return [t for t in self._tasks.values()
                if t.name not in have_parents]

    def children_of(self, name: str) -> List[str]:
        return [child for parent, child in self.edges() if parent == name]

    def parents_of(self, name: str) -> List[str]:
        return [parent for parent, child in self.edges() if child == name]

    def topological_order(self) -> List[str]:
        """Task names in dependency order; raises on cycles."""
        edges = self.edges()
        in_degree = {name: 0 for name in self._tasks}
        for _, child in edges:
            if child in in_degree:
                in_degree[child] += 1
        ready = sorted(n for n, d in in_degree.items() if d == 0)
        order: List[str] = []
        while ready:
            current = ready.pop(0)
            order.append(current)
            for parent, child in edges:
                if parent == current and child in in_degree:
                    in_degree[child] -= 1
                    if in_degree[child] == 0:
                        ready.append(child)
            ready.sort()
        if len(order) != len(self._tasks):
            raise ValueError(f"task graph {self.name!r} has a cycle")
        return order


@dataclass(frozen=True)
class Placement:
    """A full assignment of tasks to tiers (one execution model)."""

    assignment: Tuple[Tuple[str, str], ...]  # ((task, tier), ...) sorted

    @classmethod
    def of(cls, mapping: Dict[str, str]) -> "Placement":
        for task, tier in mapping.items():
            if tier not in PLACEMENTS:
                raise ValueError(f"unknown tier {tier!r} for {task!r}")
        return cls(tuple(sorted(mapping.items())))

    def tier_of(self, task: str) -> str:
        for name, tier in self.assignment:
            if name == task:
                return tier
        raise KeyError(f"task {task!r} not in placement")

    def as_dict(self) -> Dict[str, str]:
        return dict(self.assignment)

    @property
    def cloud_tasks(self) -> List[str]:
        return [name for name, tier in self.assignment if tier == "cloud"]

    @property
    def edge_tasks(self) -> List[str]:
        return [name for name, tier in self.assignment if tier == "edge"]

    def __str__(self) -> str:
        return ", ".join(f"{name}@{tier}" for name, tier in self.assignment)
