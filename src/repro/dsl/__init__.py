"""HiveMind DSL: task graphs, directives, synthesis, codegen, compiler."""

from .ast import PLACEMENTS, Placement, Stream, Task, TaskGraph, TaskProfile
from .codegen import ApiArtifact, ApiBundle, generate_apis
from .compiler import CompilationResult, CompiledPlan, HiveMindCompiler
from .constraints import (
    Constraint,
    CostConstraint,
    ExecTimeConstraint,
    LatencyConstraint,
    PlanEstimate,
    PowerConstraint,
    ThroughputConstraint,
)
from .directives import (
    DirectiveSet,
    Isolate,
    Learn,
    Overlap,
    Parallel,
    Persist,
    Place,
    Restore,
    Schedule,
    Serial,
    Synchronize,
)
from .synthesis import SynthesisError, enumerate_placements
from .validation import ValidationError, validate_graph

__all__ = [
    "Task",
    "Stream",
    "TaskGraph",
    "TaskProfile",
    "Placement",
    "PLACEMENTS",
    "Parallel",
    "Serial",
    "Overlap",
    "Synchronize",
    "DirectiveSet",
    "Schedule",
    "Isolate",
    "Place",
    "Restore",
    "Learn",
    "Persist",
    "validate_graph",
    "ValidationError",
    "enumerate_placements",
    "SynthesisError",
    "generate_apis",
    "ApiBundle",
    "ApiArtifact",
    "HiveMindCompiler",
    "CompilationResult",
    "CompiledPlan",
    "PlanEstimate",
    "Constraint",
    "LatencyConstraint",
    "ExecTimeConstraint",
    "PowerConstraint",
    "CostConstraint",
    "ThroughputConstraint",
]
