"""Placement-space synthesis (paper section 4.2, Fig 8).

For a task graph with k unpinned tasks there are 2^k cloud/edge execution
models. HiveMind enumerates the *meaningful* ones:

- tasks pinned by profile (``edge_only`` sensor collection / actuation,
  ``cloud_only`` global aggregation) or by a ``Place`` directive keep their
  tier;
- models where an unpinned task sits at the edge squeezed between cloud
  stages ("cloud -> edge -> cloud" bouncing) are discarded — they ship the
  data down and straight back up for no reason;
- an upper bound protects against combinatorial explosion (a 2-tier graph
  yields 4 models, the paper's example).
"""

from __future__ import annotations

from itertools import product
from typing import Dict, List, Optional

from .ast import Placement, TaskGraph
from .directives import DirectiveSet

__all__ = ["enumerate_placements", "SynthesisError"]

#: Enumeration guard: beyond this many unpinned tasks, refuse (the paper
#: notes users provide hints exactly to keep the space tractable).
MAX_FREE_TASKS = 14


class SynthesisError(Exception):
    """The placement space cannot be enumerated."""


def _pinned_tier(graph: TaskGraph, directives: Optional[DirectiveSet],
                 task_name: str) -> Optional[str]:
    if directives is not None and task_name in directives.placements:
        return directives.placements[task_name]
    profile = graph.task(task_name).profile
    if profile is not None:
        if profile.edge_only:
            return "edge"
        if profile.cloud_only:
            return "cloud"
    return None


def _is_bounce(graph: TaskGraph, assignment: Dict[str, str],
               task_name: str, pinned: Dict[str, Optional[str]]) -> bool:
    """An unpinned edge task with cloud parents and cloud children is a
    pointless down-and-up data bounce."""
    if assignment[task_name] != "edge" or pinned[task_name] is not None:
        return False
    parents = graph.parents_of(task_name)
    children = graph.children_of(task_name)
    if not parents or not children:
        return False
    return (all(assignment[p] == "cloud" for p in parents) and
            all(assignment[c] == "cloud" for c in children))


def enumerate_placements(graph: TaskGraph,
                         directives: Optional[DirectiveSet] = None
                         ) -> List[Placement]:
    """All meaningful execution models for the graph."""
    names = graph.topological_order()
    pinned = {name: _pinned_tier(graph, directives, name) for name in names}
    free = [name for name in names if pinned[name] is None]
    if len(free) > MAX_FREE_TASKS:
        raise SynthesisError(
            f"{len(free)} unpinned tasks yield 2^{len(free)} models; "
            f"pin some with Place() or profile flags")
    placements: List[Placement] = []
    for combo in product(("cloud", "edge"), repeat=len(free)):
        assignment = {name: tier for name, tier in pinned.items()
                      if tier is not None}
        assignment.update(dict(zip(free, combo)))
        if any(_is_bounce(graph, assignment, name, pinned)
               for name in names):
            continue
        placements.append(Placement.of(assignment))
    if not placements:
        raise SynthesisError("no meaningful execution model survives")
    return placements
