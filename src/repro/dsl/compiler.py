"""The HiveMind compiler: validation -> synthesis -> estimation -> choice.

The compiler takes a validated task graph, enumerates the meaningful
execution models (:mod:`repro.dsl.synthesis`), predicts each model's
latency, power, bandwidth and cloud cost with the analytical queueing
models, generates the cross-tier APIs for the surviving models, and ranks
them against the user's constraints. The profiling results are "presented
to the user" in the paper; here :class:`CompilationResult` carries the full
ranking so callers (and the HiveMind controller's runtime remapping) can
move down the list when goals are missed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..analytical import fork_join_response, mm1_inflation
from ..config import PaperConstants
from .ast import Placement, TaskGraph, TaskProfile
from .codegen import ApiBundle, generate_apis
from .constraints import PlanEstimate
from .directives import DirectiveSet
from .synthesis import enumerate_placements
from .validation import validate_graph

__all__ = ["CompiledPlan", "CompilationResult", "HiveMindCompiler"]

#: Serverless management overhead per activation on the warm path
#: (front end + auth + scheduling + Kafka + warm start), seconds.
WARM_PATH_OVERHEAD_S = 0.025


@dataclass(frozen=True)
class CompiledPlan:
    """One execution model with its predicted behaviour and APIs."""

    placement: Placement
    estimate: PlanEstimate
    apis: ApiBundle

    @property
    def meets_constraints(self) -> bool:
        return self.estimate.feasible


@dataclass
class CompilationResult:
    """Everything the compiler produced for one application."""

    graph: TaskGraph
    plans: List[CompiledPlan]          # ranked, best first
    chosen: CompiledPlan
    warnings: List[str]

    @property
    def placement(self) -> Placement:
        return self.chosen.placement

    def plans_satisfying(self, constraints) -> List[CompiledPlan]:
        return [plan for plan in self.plans
                if all(c.satisfied_by(plan.estimate) for c in constraints)]


class HiveMindCompiler:
    """Compiles a task graph into a ranked set of execution models."""

    def __init__(self, constants: Optional[PaperConstants] = None,
                 n_devices: Optional[int] = None,
                 device_kind: str = "drone",
                 accelerated: bool = True):
        self.constants = constants or PaperConstants()
        if device_kind == "drone":
            self.device = self.constants.drone
        elif device_kind == "car":
            self.device = self.constants.car
        else:
            raise ValueError(f"unknown device kind {device_kind!r}")
        self.n_devices = (n_devices if n_devices is not None
                          else self.device.count)
        if self.n_devices <= 0:
            raise ValueError("need at least one device")
        #: Whether the FPGA fabrics are present (affects crossing and
        #: cloud-to-cloud data costs — section 4.7 discusses running
        #: without them).
        self.accelerated = accelerated

    # -- cost model -----------------------------------------------------------
    def _profile(self, graph: TaskGraph, name: str) -> TaskProfile:
        profile = graph.task(name).profile
        if profile is None:
            raise ValueError(
                f"task {name!r} has no profile; the compiler cannot "
                f"estimate placements without one")
        return profile

    def _utilizations(self, graph: TaskGraph,
                      placement: Placement) -> Dict[str, float]:
        cores_edge = self.device.cpu_cores
        cores_cloud = (self.constants.cluster.servers *
                       self.constants.cluster.cores_per_server)
        edge_demand = cloud_demand = net_demand = 0.0
        for name in graph.task_names:
            profile = self._profile(graph, name)
            if placement.tier_of(name) == "edge":
                edge_demand += (profile.cloud_service_s *
                                self.device.cloud_to_edge_slowdown *
                                profile.rate_hz)
            else:
                cloud_demand += (profile.cloud_service_s * profile.rate_hz *
                                 self.n_devices)
        for parent, child in graph.edges():
            if placement.tier_of(parent) != placement.tier_of(child):
                parent_task = graph.task(parent)
                if parent_task.output_stream is not None:
                    # Continuous stream: budget its full flow.
                    net_demand += (parent_task.output_stream.mbs *
                                   self.n_devices)
                    continue
                parent_profile = self._profile(graph, parent)
                net_demand += (parent_profile.output_mb *
                               parent_profile.rate_hz * self.n_devices)
        # Roots placed in the cloud pull their raw input over the radio.
        for root in graph.roots():
            if placement.tier_of(root.name) == "cloud":
                profile = self._profile(graph, root.name)
                net_demand += (profile.input_mb * profile.rate_hz *
                               self.n_devices)
        wireless_mbs = self.constants.wireless.total_mbs
        return {
            "edge": edge_demand / cores_edge,
            "cloud": cloud_demand / cores_cloud,
            "network": net_demand / wireless_mbs,
            "net_demand_mbs": net_demand,
            "cloud_core_demand": cloud_demand,
        }

    def _crossing_latency(self, megabytes: float,
                          network_rho: float) -> float:
        """Edge<->cloud transfer time for one payload."""
        wireless = self.constants.wireless
        transfer = megabytes / wireless.ap_mbs  # serialization on one AP
        rtt = wireless.base_rtt_s
        processing = 0.0025 if not self.accelerated else 0.0008
        return (transfer * mm1_inflation(network_rho) + rtt + processing)

    def _cloud_share_latency(self, megabytes: float) -> float:
        """Cloud-to-cloud data exchange between dependent functions."""
        serverless = self.constants.serverless
        if self.accelerated:
            accel = self.constants.accel
            return 2 * (accel.remote_mem_latency_s +
                        megabytes / accel.remote_mem_mbs)
        return (2 * serverless.couchdb_handle_s +
                2 * (serverless.couchdb_latency_s +
                     megabytes / serverless.couchdb_mbs))

    def _task_latency(self, profile: TaskProfile, tier: str,
                      rho: Dict[str, float]) -> float:
        if tier == "edge":
            service = (profile.cloud_service_s *
                       self.device.cloud_to_edge_slowdown)
            return service * mm1_inflation(rho["edge"])
        service = fork_join_response(
            profile.cloud_service_s, profile.parallelism,
            profile.service_sigma)
        overhead = WARM_PATH_OVERHEAD_S
        if not self.accelerated:
            # Without HiveMind's scheduler optimizations a fraction of
            # activations cold-start.
            overhead += 0.15 * self.constants.serverless.cold_start_median_s
        return overhead + service * mm1_inflation(rho["cloud"])

    def estimate(self, graph: TaskGraph,
                 placement: Placement) -> PlanEstimate:
        """Analytical prediction for one execution model."""
        rho = self._utilizations(graph, placement)
        finish: Dict[str, float] = {}
        for name in graph.topological_order():
            profile = self._profile(graph, name)
            tier = placement.tier_of(name)
            ready = 0.0
            for parent in graph.parents_of(name):
                parent_profile = self._profile(graph, parent)
                parent_tier = placement.tier_of(parent)
                if parent_tier != tier:
                    crossing = self._crossing_latency(
                        parent_profile.output_mb, rho["network"])
                elif tier == "cloud":
                    crossing = self._cloud_share_latency(
                        parent_profile.output_mb)
                else:
                    crossing = 0.0
                ready = max(ready, finish[parent] + crossing)
            if not graph.parents_of(name) and tier == "cloud":
                # Raw sensor input must first reach the cloud.
                ready += self._crossing_latency(profile.input_mb,
                                                rho["network"])
            finish[name] = ready + self._task_latency(profile, tier, rho)
        latency = max(finish.values())
        # Device power above motion baseline: compute busy + radio airtime.
        compute_fraction = min(1.0, rho["edge"])
        tx_mbs_per_device = rho["net_demand_mbs"] / self.n_devices
        tx_fraction = min(1.0, tx_mbs_per_device /
                          self.constants.wireless.ap_mbs)
        power = (compute_fraction * (self.device.compute_power_w -
                                     self.device.compute_idle_w) +
                 tx_fraction * (self.device.radio_tx_w -
                                self.device.radio_idle_w))
        feasible = (rho["edge"] < 1.0 and rho["cloud"] < 1.0 and
                    rho["network"] < 1.0)
        bottleneck = max(rho["edge"], rho["cloud"], rho["network"])
        base_rate = min((self._profile(graph, n).rate_hz
                         for n in graph.task_names))
        throughput = base_rate * (1.0 if bottleneck < 1.0
                                  else 1.0 / bottleneck)
        return PlanEstimate(
            latency_s=latency,
            device_power_w=power,
            network_mbs=rho["net_demand_mbs"],
            cloud_core_demand=rho["cloud_core_demand"],
            throughput_hz=throughput,
            feasible=feasible,
        )

    # -- compilation ------------------------------------------------------------
    def compile(self, graph: TaskGraph,
                directives: Optional[DirectiveSet] = None
                ) -> CompilationResult:
        """Validate, synthesize, estimate, rank, and pick a plan."""
        warnings = validate_graph(graph, directives)
        placements = enumerate_placements(graph, directives)
        plans = []
        for placement in placements:
            estimate = self.estimate(graph, placement)
            plans.append(CompiledPlan(
                placement=placement,
                estimate=estimate,
                apis=generate_apis(graph, placement)))
        constraints = graph.constraints

        def rank_key(plan: CompiledPlan):
            satisfies = all(c.satisfied_by(plan.estimate)
                            for c in constraints)
            return (not plan.estimate.feasible, not satisfies,
                    plan.estimate.latency_s)

        plans.sort(key=rank_key)
        return CompilationResult(
            graph=graph, plans=plans, chosen=plans[0], warnings=warnings)
