"""Backend cluster: server/core/memory models and fixed IaaS pools."""

from .iaas import FixedPool
from .server import Cluster, CoreGrant, Server

__all__ = ["Server", "CoreGrant", "Cluster", "FixedPool"]
