"""Backend server model.

A :class:`Server` exposes its logical cores as a resource pool and its RAM
as a container. HiveMind's scheduler pins containers to cores (two containers
may share a server but never a core, section 4.3); pinning is modeled by
acquiring dedicated core slots for the container's lifetime. Interference on
*shared* (unpinned) deployments is modeled as a utilization-dependent
service-time inflation, which produces the serverless variability of Fig 6a.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

from ..config import ClusterConstants
from ..sim import Container, Environment, Interrupt, Resource

__all__ = ["Server", "CoreGrant", "Cluster"]


class CoreGrant:
    """A claim on ``n`` cores of one server; release() returns them."""

    def __init__(self, server: "Server", requests: List):
        self.server = server
        self._requests = requests
        self._released = False

    @property
    def cores(self) -> int:
        return len(self._requests)

    def release(self) -> None:
        if self._released:
            raise RuntimeError("core grant already released")
        for request in self._requests:
            self.server.cores.release(request)
        self._released = True


class Server:
    """One two-socket server: a core pool, a memory pool, and health."""

    def __init__(self, env: Environment, server_id: str,
                 cores: int = 40, ram_gb: float = 192.0):
        if cores <= 0:
            raise ValueError("cores must be positive")
        self.env = env
        self.server_id = server_id
        self.cores = Resource(env, capacity=cores)
        self.memory = Container(env, capacity=ram_gb * 1024.0,
                                init=ram_gb * 1024.0)  # MB free
        #: Set by the straggler mitigator when the node misbehaves
        #: (section 4.6); a server on probation receives no new functions.
        self.probation_until: float = 0.0
        #: Cleared by :meth:`fail` (chaos server-crash injection); a dead
        #: server schedules nothing new until :meth:`restore`.
        self.alive = True
        self._busy_core_seconds = 0.0
        #: Zero-arg callbacks fired on every :meth:`free_memory` (the
        #: invoker's event-driven memory waits hook in here instead of
        #: polling on a retry timer).
        self._free_listeners: List = []

    @property
    def total_cores(self) -> int:
        return self.cores.capacity

    @property
    def busy_cores(self) -> int:
        return self.cores.count

    @property
    def utilization(self) -> float:
        return self.cores.utilization

    @property
    def free_memory_mb(self) -> float:
        return self.memory.level

    @property
    def on_probation(self) -> bool:
        return self.env.now < self.probation_until

    def put_on_probation(self, duration_s: float) -> None:
        self.probation_until = max(self.probation_until,
                                   self.env.now + duration_s)

    def fail(self) -> None:
        """Crash the server (chaos injection): stop taking new work."""
        self.alive = False

    def restore(self) -> None:
        """Bring a crashed server back (reboot complete)."""
        self.alive = True

    def acquire_cores(self, n: int = 1) -> Generator:
        """Process: claim ``n`` pinned cores; returns a :class:`CoreGrant`.

        Interrupt-safe: a process killed while waiting here (server crash,
        straggler-replica reap) leaks neither its queued request nor any
        cores it already pinned.
        """
        if n <= 0:
            raise ValueError("core count must be positive")
        if n > self.cores.capacity:
            raise ValueError(
                f"requested {n} cores but {self.server_id} has "
                f"{self.cores.capacity}")
        requests = []
        request = None
        try:
            for _ in range(n):
                request = self.cores.request()
                yield request
                requests.append(request)
                request = None
        except Interrupt:
            if request is not None:
                # Granted-but-undispatched requests already hold a slot
                # (usage_since set at grant time); queued ones do not.
                if request.usage_since is not None:
                    self.cores.release(request)
                else:
                    request.cancel()
            for granted in requests:
                self.cores.release(granted)
            raise
        return CoreGrant(self, requests)

    def reserve_memory(self, mb: float) -> bool:
        """Non-blocking memory claim; False when the server is full."""
        return self.memory.try_get(mb)

    def add_free_memory_listener(self, callback) -> None:
        """Register a zero-arg callback fired after each memory release."""
        self._free_listeners.append(callback)

    def free_memory(self, mb: float) -> None:
        self.memory.put(mb)
        for listener in self._free_listeners:
            listener()

    def compute(self, grant: CoreGrant, seconds: float) -> Generator:
        """Process: run for ``seconds`` on already-granted cores."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        self._busy_core_seconds += seconds * grant.cores
        yield self.env.timeout(seconds)

    def mean_utilization(self, horizon_s: float) -> float:
        if horizon_s <= 0:
            raise ValueError("horizon must be positive")
        return min(1.0, self._busy_core_seconds /
                   (horizon_s * self.total_cores))


class Cluster:
    """The 12-server backend (section 2.1)."""

    def __init__(self, env: Environment,
                 constants: Optional[ClusterConstants] = None):
        self.env = env
        self.constants = constants or ClusterConstants()
        self.servers: Dict[str, Server] = {}
        for index in range(self.constants.servers):
            server_id = f"server{index}"
            self.servers[server_id] = Server(
                env, server_id,
                cores=self.constants.cores_per_server,
                ram_gb=self.constants.ram_gb_per_server)

    def __len__(self) -> int:
        return len(self.servers)

    def server(self, server_id: str) -> Server:
        found = self.servers.get(server_id)
        if found is None:
            raise KeyError(f"unknown server {server_id!r}")
        return found

    @property
    def total_cores(self) -> int:
        return sum(s.total_cores for s in self.servers.values())

    @property
    def busy_cores(self) -> int:
        return sum(s.busy_cores for s in self.servers.values())

    def least_loaded(self, exclude_probation: bool = True) -> Server:
        """The healthy server with the most free cores."""
        candidates = [
            s for s in self.servers.values()
            if not (exclude_probation and s.on_probation)
        ]
        if not candidates:
            candidates = list(self.servers.values())
        return min(candidates, key=lambda s: (s.utilization, s.server_id))

    def mean_utilization(self, horizon_s: float) -> float:
        values = [s.mean_utilization(horizon_s)
                  for s in self.servers.values()]
        return sum(values) / len(values)
