"""Statically provisioned (IaaS/PaaS) deployments.

The paper compares serverless against fixed allocations of equal cost
(Fig 1, 5a) and against average-/max-load provisioning (Fig 5b). A
:class:`FixedPool` is a reserved set of worker cores: tasks queue FIFO and
run without serverless instantiation overheads, but the pool cannot grow —
under load spikes it saturates and latency grows unboundedly, and under low
load it sits idle (the inefficiency serverless removes).

Instance (re)provisioning on IaaS takes tens of seconds (the paper cites
"several seconds" to spin up new instances versus milliseconds for
functions); :meth:`FixedPool.resize` models that delay.
"""

from __future__ import annotations

from typing import Generator

from ..sim import Environment, Resource

__all__ = ["FixedPool"]


class FixedPool:
    """A reserved pool of worker cores with FIFO task admission."""

    #: Spin-up latency for adding IaaS instances (calibrated; the paper
    #: cites several seconds for traditional cloud instances).
    PROVISION_DELAY_S = 35.0

    def __init__(self, env: Environment, cores: int, name: str = "pool"):
        if cores <= 0:
            raise ValueError("pool must have at least one core")
        self.env = env
        self.name = name
        self.workers = Resource(env, capacity=cores)
        self._core_seconds = 0.0

    @property
    def cores(self) -> int:
        return self.workers.capacity

    @property
    def queue_depth(self) -> int:
        return len(self.workers.queue)

    def execute(self, service_s: float) -> Generator:
        """Process: run one task; returns (wait_s, service_s)."""
        if service_s < 0:
            raise ValueError("service time must be non-negative")
        arrived = self.env.now
        with self.workers.request() as grant:
            yield grant
            wait_s = self.env.now - arrived
            self._core_seconds += service_s
            yield self.env.timeout(service_s)
        return (wait_s, service_s)

    def resize(self, cores: int) -> Generator:
        """Process: change capacity; growth pays the provision delay."""
        if cores <= 0:
            raise ValueError("pool must keep at least one core")
        if cores > self.workers.capacity:
            yield self.env.timeout(self.PROVISION_DELAY_S)
        self.workers.resize(cores)
        return cores

    def utilization(self, horizon_s: float) -> float:
        """Mean core occupancy over ``horizon_s`` (Fig 5b inefficiency)."""
        if horizon_s <= 0:
            raise ValueError("horizon must be positive")
        return min(1.0, self._core_seconds / (horizon_s * self.cores))
