"""Discrete-event simulation substrate for the HiveMind reproduction.

Public surface:

- kernel: :class:`Environment`, :class:`Event`, :class:`Timeout`,
  :class:`Process`, :class:`Interrupt`
- resources: :class:`Resource`, :class:`PriorityResource`,
  :class:`Container`, :class:`Store`
- rng: :class:`RandomStreams`
- trace: :class:`Tracer`, :class:`NullTracer`
"""

from .kernel import (
    Condition,
    Environment,
    Event,
    Interrupt,
    Process,
    StopSimulation,
    Timeout,
)
from .resources import Container, Preempted, PriorityResource, Resource, Store
from .rng import RandomStreams
from .trace import NullTracer, Tracer, TraceRecord

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "Interrupt",
    "StopSimulation",
    "Resource",
    "PriorityResource",
    "Preempted",
    "Container",
    "Store",
    "RandomStreams",
    "Tracer",
    "NullTracer",
    "TraceRecord",
]
