"""Sharded swarm execution: cell decomposition + conservative time sync.

The unsharded :class:`~repro.platforms.scenario_runner.ScenarioRunner`
steps the whole swarm inside one kernel in one process, which caps fig17
reproduction at ~1k devices. This module scales the same scenario out by
decomposing the swarm into fixed-size **cells** — disjoint groups of
devices, each flying its own slice of the (linearly scaled) field inside
its own :class:`~repro.sim.Environment` — and one **cloud shard**
(:class:`~repro.serverless.gateway.CloudGateway`) running the shared
backend. Shards are merely *scheduling groups of cells* spread over
worker processes; the semantic unit is the cell.

Determinism contract (the PR 1 seed-by-replica pattern, applied within a
run):

- The cell decomposition depends only on ``(n_devices, cell_devices)``,
  never on the shard count.
- Cell ``k`` seeds its streams with ``seed + 1000 * k`` and simulates an
  identical world no matter which worker runs it.
- Cloud-bound messages carry their service-time draws with them and are
  merged in canonical ``(arrival_s, cell, seq)`` order before the cloud
  shard sees them; the cloud shard draws only from its own offset
  namespace.
- Result rows are merged in canonical order, so the final
  :class:`~repro.platforms.base.RunResult` is **byte-identical at any
  shard count** (1, 2, 4, ... workers — same bytes, different
  wall-clock).

Time synchronization is conservative: all cells advance to a barrier
time ``t`` before the cloud shard advances past ``t - w`` (one window
``w`` behind), and ``w`` is never smaller than
:func:`~repro.network.rpc.boundary_lookahead` — the minimum edge→cloud
latency — so no message can ever arrive in the cloud shard's past. The
scenario task graphs have no cloud→edge data edge (only the final
synchronization barrier joins the tiers), so the reverse direction needs
no lookahead at all and the window can be made much larger than the
physical bound for efficiency; ``REPRO_SHARD_WINDOW`` tunes it.

The unarmed path (``REPRO_SHARDS`` unset / ``shards`` not given) never
enters this module: experiments fall through to the unsharded runner,
byte-identical to the seed.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..config import DEFAULT, PaperConstants
from ..network import boundary_lookahead
from ..platforms.base import PlatformConfig, RunResult
from ..platforms.scenario_runner import CLOUD_BUDGET_CORES, ScenarioRunner
from ..serverless.gateway import CloudGateway
from ..telemetry import (BandwidthMeter, BreakdownAggregate,
                         LatencyBreakdown, MetricSeries)
from . import kernel
from .accounting import layer_counts

__all__ = ["CellSpec", "CloudCall", "CellBoundary", "plan_cells",
           "run_sharded", "DEFAULT_CELL_DEVICES", "DEFAULT_WINDOW_S"]

#: Devices per cell: matches the granularity at which HiveMind itself
#: scales out shared-state schedulers (one controller per 64 devices, see
#: ``ScenarioRunner._n_controllers``), so a cell is one controller's
#: worth of swarm.
DEFAULT_CELL_DEVICES = 64

#: Default barrier window (simulated seconds). Correctness only requires
#: ``window >= boundary_lookahead`` (~13 ms); the large default amortizes
#: barrier IPC because the scenario dataflow is strictly edge→cloud.
#: Part of the model configuration: results are invariant to the shard
#: count at a *fixed* window, not across window sizes.
DEFAULT_WINDOW_S = 60.0

#: Hard ceiling on simulated time before the barrier loop declares the
#: mission hung (no scenario comes near this horizon).
MAX_HORIZON_S = 1e8


@dataclass(frozen=True)
class CellSpec:
    """One cell of the decomposed swarm (pure data, picklable)."""

    index: int
    n_devices: int
    device_id_base: int
    seed: int
    #: This cell's population-proportional share of the cloud compute
    #: budget, so the hybrid runtime-remapping fraction matches the
    #: whole-swarm value.
    cloud_budget_cores: float
    #: Scheduled device failures local to this cell:
    #: (cell-local device index, time) pairs.
    fail_devices_at: Tuple[Tuple[int, float], ...] = ()


@dataclass
class CloudCall:
    """One cloud-bound message crossing the cell/cloud boundary.

    The edge half fills the submit-time fields (including every
    service-time draw the cloud side will need, taken from the cell's
    own streams); the cloud shard fills ``completion_s`` and
    ``cloud_breakdown``; the cell later fills the edge-completion fields
    when its local task wrapper (obstacle-avoidance join) finishes. The
    merge layer joins both halves into one result row.
    """

    cell: int
    seq: int
    device_id: str
    arrival_s: float
    #: Cloud recognition service draw; None for dedup-only messages
    #: (edge-executed recognition whose aggregation is still cloud-side).
    recognition_s: Optional[float]
    dedup_s: Optional[float]
    input_mb: float
    output_mb: float
    # -- edge half (filled at the obstacle join) -----------------------
    start_s: Optional[float] = None
    edge_done_s: Optional[float] = None
    edge_breakdown: Optional[Dict[str, float]] = None
    # -- cloud half (filled by the gateway) ----------------------------
    completion_s: Optional[float] = None
    cloud_breakdown: Optional[Dict[str, float]] = None

    @property
    def sort_key(self) -> Tuple[float, int, int]:
        return (self.arrival_s, self.cell, self.seq)


class CellBoundary:
    """The cell side of the edge/cloud boundary.

    :class:`~repro.platforms.scenario_runner.ScenarioRunner` calls
    :meth:`submit` instead of invoking an in-process platform; the shard
    driver drains :meth:`take_fresh` at each barrier.
    """

    def __init__(self, cell: int):
        self.cell = cell
        self._seq = 0
        self.calls: List[CloudCall] = []
        self._fresh: List[CloudCall] = []

    def submit(self, device_id: str, arrival_s: float,
               recognition_s: Optional[float], dedup_s: Optional[float],
               input_mb: float, output_mb: float) -> CloudCall:
        call = CloudCall(
            cell=self.cell, seq=self._seq, device_id=device_id,
            arrival_s=arrival_s, recognition_s=recognition_s,
            dedup_s=dedup_s, input_mb=input_mb, output_mb=output_mb)
        self._seq += 1
        self.calls.append(call)
        self._fresh.append(call)
        return call

    def take_fresh(self) -> List[CloudCall]:
        fresh, self._fresh = self._fresh, []
        return fresh


def plan_cells(n_devices: int, seed: int = 0,
               cell_devices: int = DEFAULT_CELL_DEVICES,
               device_faults: Sequence[Tuple[int, float]] = ()
               ) -> List[CellSpec]:
    """Decompose ``n_devices`` into cells (shard-count independent).

    ``device_faults`` is a sequence of (global device index, time) crash
    schedules, partitioned onto the owning cells.
    """
    if n_devices <= 0:
        raise ValueError("n_devices must be positive")
    if cell_devices <= 0:
        raise ValueError("cell_devices must be positive")
    cell_devices = min(cell_devices, n_devices)
    n_cells = math.ceil(n_devices / cell_devices)
    by_cell: Dict[int, List[Tuple[int, float]]] = {}
    for index, at_time in device_faults:
        if not 0 <= index < n_devices:
            raise ValueError(f"device index {index} outside the swarm")
        by_cell.setdefault(index // cell_devices, []).append(
            (index % cell_devices, at_time))
    specs = []
    for cell in range(n_cells):
        base = cell * cell_devices
        count = min(cell_devices, n_devices - base)
        specs.append(CellSpec(
            index=cell, n_devices=count, device_id_base=base,
            seed=seed + 1000 * cell,
            cloud_budget_cores=CLOUD_BUDGET_CORES * count / n_devices,
            fail_devices_at=tuple(by_cell.get(cell, ()))))
    return specs


# -- cell worker (runs in a shard process or in-process) ----------------

def _build_cell(config: PlatformConfig, scenario, spec: CellSpec,
                constants: PaperConstants, total_devices: int,
                runner_kwargs: Dict) -> Tuple[ScenarioRunner, CellBoundary]:
    boundary = CellBoundary(spec.index)
    runner = ScenarioRunner(
        config, scenario, constants=constants,
        n_devices=spec.n_devices, seed=spec.seed,
        cloud_boundary=boundary,
        device_id_base=spec.device_id_base,
        cloud_budget_cores=spec.cloud_budget_cores,
        placement_devices=total_devices,
        fail_devices_at=spec.fail_devices_at,
        **runner_kwargs)
    runner.start()
    return runner, boundary


def _worker_main(conn, config: PlatformConfig, scenario,
                 specs: List[CellSpec], constants: PaperConstants,
                 total_devices: int, runner_kwargs: Dict) -> None:
    """Shard worker loop: build my cells, then serve barrier commands.

    Protocol (parent -> worker): ``("advance", t)`` steps every cell to
    barrier ``t`` and replies ``("calls", fresh_calls, status)`` where
    ``status`` maps cell index to its makespan once finished;
    ``("finish", duration)`` finalizes every cell and replies
    ``("result", payload)`` with the cells' RunResults, complete call
    ledgers, shipped spans, and kernel-event deltas, then exits.
    """
    tracer = obs.active_tracer()
    spans_before = len(tracer) if tracer is not None else 0
    events_before = kernel.events_consumed()
    layers_before = layer_counts()
    cells = [(spec, *_build_cell(config, scenario, spec, constants,
                                 total_devices, runner_kwargs))
             for spec in specs]
    try:
        while True:
            command, argument = conn.recv()
            if command == "advance":
                status = {}
                fresh: List[CloudCall] = []
                for spec, runner, boundary in cells:
                    runner.advance_to(argument)
                    fresh.extend(boundary.take_fresh())
                    if runner.finished:
                        status[spec.index] = runner.makespan
                conn.send(("calls", fresh, status))
            elif command == "finish":
                layers_after = layer_counts()
                payload = {
                    "results": [(spec.index,
                                 runner.finish(duration_override=argument),
                                 boundary.calls)
                                for spec, runner, boundary in cells],
                    "sim_events": kernel.events_consumed() - events_before,
                    "layer_events": {
                        layer: layers_after[layer] - layers_before[layer]
                        for layer in layers_after},
                    "spans": (tuple(tracer.take_from(spans_before))
                              if tracer is not None else None),
                }
                conn.send(("result", payload))
                return
            else:
                raise RuntimeError(f"unknown shard command {command!r}")
    except (EOFError, KeyboardInterrupt):
        return


class _Shard:
    """Driver-side handle for one scheduling group of cells.

    Runs its cells in a worker process when one can be spawned, falling
    back to in-process execution otherwise (sandboxes and test
    environments routinely forbid ``fork``; both paths produce the same
    bytes, see the module determinism contract).
    """

    def __init__(self, specs: List[CellSpec], config, scenario,
                 constants, total_devices: int, runner_kwargs: Dict,
                 in_process: bool):
        self.specs = specs
        self._conn = None
        self._process = None
        self._cells = None
        if not in_process:
            import multiprocessing
            try:
                parent_conn, child_conn = multiprocessing.Pipe()
                process = multiprocessing.Process(
                    target=_worker_main,
                    args=(child_conn, config, scenario, specs, constants,
                          total_devices, runner_kwargs),
                    daemon=True)
                process.start()
                child_conn.close()
                self._conn = parent_conn
                self._process = process
            except (OSError, ValueError):
                self._conn = None  # no fork/spawn available here
        if self._conn is None:
            self._cells = [
                (spec, *_build_cell(config, scenario, spec, constants,
                                    total_devices, runner_kwargs))
                for spec in specs]

    @property
    def in_process(self) -> bool:
        return self._cells is not None

    def send_advance(self, until: float) -> None:
        if self._conn is not None:
            self._conn.send(("advance", until))

    def collect_advance(self, until: float
                        ) -> Tuple[List[CloudCall], Dict[int, float]]:
        if self._conn is not None:
            kind, fresh, status = self._conn.recv()
            assert kind == "calls"
            return fresh, status
        status = {}
        fresh: List[CloudCall] = []
        for spec, runner, boundary in self._cells:
            runner.advance_to(until)
            fresh.extend(boundary.take_fresh())
            if runner.finished:
                status[spec.index] = runner.makespan
        return fresh, status

    def send_finish(self, duration: float) -> None:
        if self._conn is not None:
            self._conn.send(("finish", duration))

    def collect_finish(self, duration: float) -> Dict:
        if self._conn is not None:
            kind, payload = self._conn.recv()
            assert kind == "result"
            self._conn.close()
            self._process.join(timeout=60)
            return payload
        return {
            "results": [(spec.index,
                         runner.finish(duration_override=duration),
                         boundary.calls)
                        for spec, runner, boundary in self._cells],
            # In-process cells dispatch on this process's kernel counters,
            # which total_events_consumed() already covers.
            "sim_events": 0,
            "layer_events": {},
            "spans": None,  # already on this process's tracer
        }


# -- merge helpers ------------------------------------------------------

def _merge_latencies(results: List[Tuple[int, RunResult, List[CloudCall]]],
                     name: str) -> Tuple[MetricSeries, BreakdownAggregate]:
    """Join edge/cloud task halves and merge all rows in canonical order.

    Canonical row order is ``(start time, cell, within-cell position)``
    with deferred (cloud-completing) rows positioned after the cell's
    local rows — a pure function of the cell decomposition, so the
    merged series is identical at any shard count.
    """
    rows = []
    for cell, result, calls in results:
        series = result.task_latencies
        values, times = series.values, series.times
        for position in range(len(series)):
            rows.append((float(times[position]), cell, position,
                         float(values[position]), None))
        for call in calls:
            if call.start_s is None or call.completion_s is None:
                continue  # task never completed (e.g. device died mid-run)
            latency = max(call.edge_done_s, call.completion_s) - call.start_s
            breakdown = (LatencyBreakdown(**call.edge_breakdown) +
                         LatencyBreakdown(**call.cloud_breakdown))
            rows.append((call.start_s, cell, 10 ** 9 + call.seq,
                         latency, breakdown))
    rows.sort(key=lambda row: row[:3])
    # A cell's local breakdown records were appended in lockstep with its
    # latency samples (handle_batch adds both together), so local row
    # ``position`` maps straight to ``_records[position]``.
    local_records = {cell: result.breakdowns._records
                     for cell, result, _ in results}
    latencies = MetricSeries(name)
    breakdowns = BreakdownAggregate()
    for time, cell, position, value, breakdown in rows:
        latencies.add(value, time=time)
        if breakdown is None:
            breakdown = local_records[cell][position]
        breakdowns.add(breakdown)
    return latencies, breakdowns


def _merge_extras(results, gateway: CloudGateway, makespan: float,
                  window_s: float, shards: int,
                  workers: int) -> Tuple[Dict, bool]:
    ordered = [result for _, result, _ in results]
    from ..learning.accuracy import DetectionTally
    tally = DetectionTally()
    for result in ordered:
        cell_tally = result.extras.get("tally")
        if cell_tally is not None:
            tally.correct += cell_tally.correct
            tally.false_negatives += cell_tally.false_negatives
            tally.false_positives += cell_tally.false_positives
            tally.true_negatives += cell_tally.true_negatives
    failed: List[str] = []
    for result in ordered:
        failed.extend(result.extras.get("failed_devices", []))
    first = ordered[0].extras
    extras: Dict[str, object] = {
        "makespan_s": makespan,
        "targets": sum(r.extras["targets"] for r in ordered),
        "recognition_tier": first["recognition_tier"],
        "cloud_fraction": first["cloud_fraction"],
        "persisted_documents": gateway.persisted_documents,
        "tally": tally,
        "failed_devices": failed,
        "cold_starts": gateway.cold_starts,
        "cells": len(ordered),
        "shards": shards,
        "shard_workers": workers,
        "window_s": window_s,
        "cloud_completions": gateway.completions,
        "cloud_makespan_s": gateway.last_completion_s,
    }
    if "unique_people" in first:
        extras["unique_people"] = sum(
            r.extras["unique_people"] for r in ordered)
    else:
        extras["items_found"] = sum(
            r.extras["items_found"] for r in ordered)
    completed = all(r.completed for r in ordered)
    return extras, completed


# -- driver -------------------------------------------------------------

def resolve_window(constants: PaperConstants,
                   window_s: Optional[float] = None) -> float:
    """Barrier window: configured value clamped to the causal minimum."""
    if window_s is None:
        configured = os.environ.get("REPRO_SHARD_WINDOW", "")
        window_s = float(configured) if configured else DEFAULT_WINDOW_S
    if window_s <= 0:
        raise ValueError("barrier window must be positive")
    return max(window_s, boundary_lookahead(constants))


def run_sharded(config: PlatformConfig, scenario, n_devices: int,
                seed: int = 0, shards: int = 1,
                cell_devices: int = DEFAULT_CELL_DEVICES,
                window_s: Optional[float] = None,
                constants: PaperConstants = DEFAULT,
                device_faults: Sequence[Tuple[int, float]] = (),
                **runner_kwargs) -> RunResult:
    """Run one scenario with the swarm decomposed into cells over
    ``shards`` worker processes; returns a merged :class:`RunResult`
    byte-identical at any ``shards`` value.

    ``runner_kwargs`` pass through to every cell's
    :class:`~repro.platforms.scenario_runner.ScenarioRunner` (e.g.
    ``frame_mb``, ``fps``, ``passes``, ``vector_edge``,
    ``analytic_net``). ``device_faults`` is a partitioned fault plan's
    device-crash schedule as (global index, time) pairs — see
    :meth:`repro.faults.FaultPlan.partition`.
    """
    if shards < 1:
        raise ValueError("shards must be at least 1")
    if config.execution not in ("cloud_faas", "hybrid"):
        raise ValueError(
            "sharded execution requires a cloud-backed platform "
            f"(got execution={config.execution!r})")
    specs = plan_cells(n_devices, seed=seed, cell_devices=cell_devices,
                       device_faults=device_faults)
    shards = min(shards, len(specs))
    global_constants = constants.scaled_for_swarm(n_devices)
    window = resolve_window(global_constants, window_s)
    analytic = runner_kwargs.get("analytic_net")
    gateway = CloudGateway(config, scenario, global_constants,
                           n_devices=n_devices, seed=seed,
                           analytic=analytic)

    # Worker processes are capped by the cgroup-aware core count: on a
    # quota-limited container extra processes cannot add wall-clock and
    # only pay fork + pickle overhead, so shard *scheduling groups*
    # collapse onto min(shards, cores) processes (one → in-process).
    # Results are unaffected — cells are the semantic unit and simulate
    # identically wherever they are scheduled.
    from ..experiments.parallel import default_workers
    workers = max(1, min(shards, default_workers()))
    groups: List[List[CellSpec]] = [[] for _ in range(workers)]
    for position, spec in enumerate(specs):
        groups[position % workers].append(spec)
    shard_handles = [
        _Shard(group, config, scenario, constants, n_devices,
               runner_kwargs, in_process=(workers == 1))
        for group in groups]

    # Barrier loop: cells to t, exchange, cloud to t.
    finished: Dict[int, float] = {}
    fed_calls: List[CloudCall] = []
    barrier = 0.0
    while len(finished) < len(specs):
        barrier += window
        if barrier > MAX_HORIZON_S:
            raise RuntimeError(
                f"mission not finished by t={barrier:.0f}s; "
                "sharded barrier loop aborted")
        for handle in shard_handles:
            handle.send_advance(barrier)
        batch: List[CloudCall] = []
        for handle in shard_handles:
            fresh, status = handle.collect_advance(barrier)
            batch.extend(fresh)
            finished.update(status)
        batch.sort(key=lambda call: call.sort_key)
        gateway.feed(batch)
        fed_calls.extend(batch)
        gateway.advance_to(barrier)

    cloud_done = gateway.drain()
    makespan = max(max(finished.values()), cloud_done)

    tracer = obs.active_tracer()
    for handle in shard_handles:
        handle.send_finish(makespan)
    results: List[Tuple[int, RunResult, List[CloudCall]]] = []
    for handle in shard_handles:
        payload = handle.collect_finish(makespan)
        results.extend(payload["results"])
        if payload["sim_events"]:
            from ..experiments.parallel import absorb_worker_counts
            absorb_worker_counts(payload["sim_events"],
                                 payload["layer_events"])
        if payload["spans"] and tracer is not None:
            # Re-home worker spans under the shard's first cell index
            # (the PR 5 replica-tagging pattern across processes).
            tracer.absorb(payload["spans"],
                          replica=handle.specs[0].index)
    results.sort(key=lambda item: item[0])

    # Worker-side call copies carry the edge half; the gateway finalized
    # the cloud half on the driver's copies. Join them by (cell, seq)
    # (a no-op for in-process shards, where both are the same object).
    cloud_half = {(call.cell, call.seq): call for call in fed_calls}
    for _, _, calls in results:
        for call in calls:
            done = cloud_half.get((call.cell, call.seq))
            if done is not None and done is not call:
                call.completion_s = done.completion_s
                call.cloud_breakdown = done.cloud_breakdown

    name = f"{scenario.key}.{config.name}"
    latencies, breakdowns = _merge_latencies(results, name)
    meter = BandwidthMeter("wireless")
    for _, result, _ in results:
        for time, megabytes in result.wireless_meter.events:
            meter.record(time, megabytes)
    energy = [account for _, result, _ in results
              for account in result.energy_accounts]
    extras, completed = _merge_extras(results, gateway, makespan,
                                      window, shards, workers)
    return RunResult(
        platform=config.name,
        workload=scenario.key,
        task_latencies=latencies,
        breakdowns=breakdowns,
        energy_accounts=energy,
        wireless_meter=meter,
        duration_s=makespan,
        completed=completed,
        extras=extras,
    )
