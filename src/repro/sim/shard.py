"""Sharded swarm execution: cell decomposition + conservative time sync.

The unsharded :class:`~repro.platforms.scenario_runner.ScenarioRunner`
steps the whole swarm inside one kernel in one process, which caps fig17
reproduction at ~1k devices. This module scales the same scenario out by
decomposing the swarm into fixed-size **cells** — disjoint groups of
devices, each flying its own slice of the (linearly scaled) field inside
its own :class:`~repro.sim.Environment` — and one **cloud shard**
(:class:`~repro.serverless.gateway.CloudGateway`) running the shared
backend. Shards are merely *scheduling groups of cells* spread over
worker processes; the semantic unit is the cell.

Determinism contract (the PR 1 seed-by-replica pattern, applied within a
run):

- The cell decomposition depends only on ``(n_devices, cell_devices)``,
  never on the shard count.
- Cell ``k`` seeds its streams with ``seed + 1000 * k`` and simulates an
  identical world no matter which worker runs it.
- Cloud-bound messages carry their service-time draws with them and are
  merged in canonical ``(arrival_s, cell, seq)`` order before the cloud
  shard sees them; the cloud shard draws only from its own offset
  namespace.
- Result rows are merged in canonical order, so the final
  :class:`~repro.platforms.base.RunResult` is **byte-identical at any
  shard count** (1, 2, 4, ... workers — same bytes, different
  wall-clock).

Time synchronization is conservative: all cells advance to a barrier
time ``t`` before the cloud shard advances past ``t - w`` (one window
``w`` behind), and ``w`` is never smaller than
:func:`~repro.network.rpc.boundary_lookahead` — the minimum edge→cloud
latency — so no message can ever arrive in the cloud shard's past. The
scenario task graphs have no cloud→edge data edge (only the final
synchronization barrier joins the tiers), so the reverse direction needs
no lookahead at all and the window can be made much larger than the
physical bound for efficiency; ``REPRO_SHARD_WINDOW`` tunes it.

The unarmed path (``REPRO_SHARDS`` unset / ``shards`` not given) never
enters this module: experiments fall through to the unsharded runner,
byte-identical to the seed.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..config import DEFAULT, PaperConstants
from ..network import boundary_lookahead
from ..platforms.base import PlatformConfig, RunResult
from ..platforms.scenario_runner import CLOUD_BUDGET_CORES, ScenarioRunner
from ..serverless.gateway import CloudGateway
from ..telemetry import (BandwidthMeter, BreakdownAggregate,
                         LatencyBreakdown, MetricSeries)
from ..faults.worker import WorkerFaultPlan
from . import flags, kernel
from .accounting import layer_counts
from .supervisor import (ProtocolError, SupervisedConnection, chaos_pause,
                         incident_count, incidents_since,
                         resolve_worker_deadline, resolve_worker_retries)

__all__ = ["CellSpec", "CloudCall", "CellBoundary", "plan_cells",
           "run_sharded", "DEFAULT_CELL_DEVICES", "DEFAULT_WINDOW_S",
           "DEFAULT_REGION_DEVICES"]

#: Devices per cell: matches the granularity at which HiveMind itself
#: scales out shared-state schedulers (one controller per 64 devices, see
#: ``ScenarioRunner._n_controllers``), so a cell is one controller's
#: worth of swarm.
DEFAULT_CELL_DEVICES = 64

#: Default barrier window (simulated seconds). Correctness only requires
#: ``window >= boundary_lookahead`` (~13 ms); the large default amortizes
#: barrier IPC because the scenario dataflow is strictly edge→cloud.
#: Part of the model configuration: results are invariant to the shard
#: count at a *fixed* window, not across window sizes.
DEFAULT_WINDOW_S = 60.0

#: Devices per cloud region when the cloud tier is sharded
#: (``REPRO_CLOUD_SHARDS``): one region per 512 devices is eight cells'
#: (eight controllers') worth of swarm — the granularity at which the
#: multi-region controller layout of section 4.7 splits the backend.
#: Region membership is a pure function of ``(cell plan,
#: region_devices)``, never of the worker count, so merged rows are
#: identical at any ``(shards, cloud_shards)`` combination.
DEFAULT_REGION_DEVICES = 512

#: Hard ceiling on simulated time before the barrier loop declares the
#: mission hung (no scenario comes near this horizon).
MAX_HORIZON_S = 1e8

#: Global cap on synthetic cloud calls injected by mean-field cells in a
#: hybrid run; per-cell slots shrink as the background fleet grows so a
#: 1M-device background prices into a bounded stream.
MAX_SYNTHETIC_CALLS = 4096

#: Supervision deadline when a handle is constructed directly;
#: :func:`run_sharded` derives the real one from the barrier window via
#: :func:`repro.sim.supervisor.resolve_worker_deadline`.
DEADLINE_FALLBACK_S = 60.0


@dataclass(frozen=True)
class CellSpec:
    """One cell of the decomposed swarm (pure data, picklable)."""

    index: int
    n_devices: int
    device_id_base: int
    seed: int
    #: This cell's population-proportional share of the cloud compute
    #: budget, so the hybrid runtime-remapping fraction matches the
    #: whole-swarm value.
    cloud_budget_cores: float
    #: Scheduled device failures local to this cell:
    #: (cell-local device index, time) pairs.
    fail_devices_at: Tuple[Tuple[int, float], ...] = ()
    #: ``"exact"`` (simulate every device) or ``"meanfield"`` (hybrid
    #: runs: price the cell's cloud load as a synthetic arrival stream).
    mode: str = "exact"
    #: Owning cloud region (``device_id_base // region_devices``) — a
    #: pure function of the plan, independent of shard/worker counts.
    region: int = 0


@dataclass
class CloudCall:
    """One cloud-bound message crossing the cell/cloud boundary.

    The edge half fills the submit-time fields (including every
    service-time draw the cloud side will need, taken from the cell's
    own streams); the cloud shard fills ``completion_s`` and
    ``cloud_breakdown``; the cell later fills the edge-completion fields
    when its local task wrapper (obstacle-avoidance join) finishes. The
    merge layer joins both halves into one result row.
    """

    cell: int
    seq: int
    device_id: str
    arrival_s: float
    #: Cloud recognition service draw; None for dedup-only messages
    #: (edge-executed recognition whose aggregation is still cloud-side).
    recognition_s: Optional[float]
    dedup_s: Optional[float]
    input_mb: float
    output_mb: float
    # -- edge half (filled at the obstacle join) -----------------------
    start_s: Optional[float] = None
    edge_done_s: Optional[float] = None
    edge_breakdown: Optional[Dict[str, float]] = None
    # -- cloud half (filled by the gateway) ----------------------------
    completion_s: Optional[float] = None
    cloud_breakdown: Optional[Dict[str, float]] = None
    # -- cloud-tier sharding -------------------------------------------
    #: Owning cloud region (stamped by the boundary; 0 when the cloud
    #: tier is monolithic).
    region: int = 0
    #: True for mean-field background load (hybrid runs): served without
    #: straggler mitigation, counted as background completions, and
    #: never joined into a latency row.
    synthetic: bool = False
    #: Tasks' worth of load this message carries (synthetic streams
    #: compress many batches into one weighted call; exact calls are 1).
    weight: float = 1.0
    # -- open-loop serving ---------------------------------------------
    #: Owning serving tenant (``None`` for swarm and mean-field
    #: traffic). Tenant-tagged calls go through the admission gate and
    #: its per-tenant fairness ledger; swarm calls never do.
    tenant: Optional[str] = None
    #: True when the admission controller shed this call (no pipeline
    #: stages priced, no completion).
    shed: bool = False

    @property
    def sort_key(self) -> Tuple[float, int, int]:
        return (self.arrival_s, self.cell, self.seq)


class CellBoundary:
    """The cell side of the edge/cloud boundary.

    :class:`~repro.platforms.scenario_runner.ScenarioRunner` calls
    :meth:`submit` instead of invoking an in-process platform; the shard
    driver drains :meth:`take_fresh` at each barrier.
    """

    def __init__(self, cell: int, region: int = 0):
        self.cell = cell
        self.region = region
        self._seq = 0
        self.calls: List[CloudCall] = []
        self._fresh: List[CloudCall] = []

    def submit(self, device_id: str, arrival_s: float,
               recognition_s: Optional[float], dedup_s: Optional[float],
               input_mb: float, output_mb: float) -> CloudCall:
        call = CloudCall(
            cell=self.cell, seq=self._seq, device_id=device_id,
            arrival_s=arrival_s, recognition_s=recognition_s,
            dedup_s=dedup_s, input_mb=input_mb, output_mb=output_mb,
            region=self.region)
        self._seq += 1
        self.calls.append(call)
        self._fresh.append(call)
        return call

    def take_fresh(self) -> List[CloudCall]:
        fresh, self._fresh = self._fresh, []
        return fresh


def plan_cells(n_devices: int, seed: int = 0,
               cell_devices: int = DEFAULT_CELL_DEVICES,
               device_faults: Sequence[Tuple[int, float]] = (),
               exact_devices: Optional[int] = None,
               region_devices: int = DEFAULT_REGION_DEVICES
               ) -> List[CellSpec]:
    """Decompose ``n_devices`` into cells (shard-count independent).

    ``device_faults`` is a sequence of (global device index, time) crash
    schedules, partitioned onto the owning cells. ``exact_devices``
    (hybrid runs) keeps the cells covering the first ``exact_devices``
    devices exact and marks the rest ``mode="meanfield"``; a cell
    straddling the split stays exact, so the exact focus sub-swarm never
    shrinks below what was asked for. ``region_devices`` sets the cloud
    region granularity; a cell belongs entirely to the region owning its
    base device (``device_id_base // region_devices``), so cells never
    straddle regions.
    """
    if n_devices <= 0:
        raise ValueError("n_devices must be positive")
    if cell_devices <= 0:
        raise ValueError("cell_devices must be positive")
    if region_devices <= 0:
        raise ValueError("region_devices must be positive")
    if exact_devices is not None and exact_devices <= 0:
        raise ValueError("a hybrid run needs at least one exact device")
    cell_devices = min(cell_devices, n_devices)
    n_cells = math.ceil(n_devices / cell_devices)
    by_cell: Dict[int, List[Tuple[int, float]]] = {}
    for index, at_time in device_faults:
        if not 0 <= index < n_devices:
            raise ValueError(f"device index {index} outside the swarm")
        by_cell.setdefault(index // cell_devices, []).append(
            (index % cell_devices, at_time))
    specs = []
    for cell in range(n_cells):
        base = cell * cell_devices
        count = min(cell_devices, n_devices - base)
        mode = ("meanfield"
                if exact_devices is not None and base >= exact_devices
                else "exact")
        if mode == "meanfield" and by_cell.get(cell):
            # Scheduled crashes demand per-device simulation: a faulted
            # cell is promoted back to exact rather than silently
            # dropping its fault schedule.
            mode = "exact"
        specs.append(CellSpec(
            index=cell, n_devices=count, device_id_base=base,
            seed=seed + 1000 * cell,
            cloud_budget_cores=CLOUD_BUDGET_CORES * count / n_devices,
            fail_devices_at=tuple(by_cell.get(cell, ())),
            mode=mode, region=base // region_devices))
    return specs


# -- cell worker (runs in a shard process or in-process) ----------------

def _build_cell(config: PlatformConfig, scenario, spec: CellSpec,
                constants: PaperConstants, total_devices: int,
                runner_kwargs: Dict) -> Tuple[ScenarioRunner, CellBoundary]:
    boundary = CellBoundary(spec.index, region=spec.region)
    runner = ScenarioRunner(
        config, scenario, constants=constants,
        n_devices=spec.n_devices, seed=spec.seed,
        cloud_boundary=boundary,
        device_id_base=spec.device_id_base,
        cloud_budget_cores=spec.cloud_budget_cores,
        placement_devices=total_devices,
        fail_devices_at=spec.fail_devices_at,
        **runner_kwargs)
    runner.start()
    return runner, boundary


def _worker_main(conn, config: PlatformConfig, scenario,
                 specs: List[CellSpec], constants: PaperConstants,
                 total_devices: int, runner_kwargs: Dict,
                 faults: Tuple[Tuple[str, int, float], ...] = ()) -> None:
    """Shard worker loop: build my cells, then serve barrier commands.

    Protocol (parent -> worker): ``("advance", t)`` steps every cell to
    barrier ``t`` and replies ``("calls", (fresh_calls, status))`` where
    ``status`` maps cell index to its makespan once finished;
    ``("finish", duration)`` finalizes every cell and replies
    ``("result", payload)`` with the cells' RunResults, complete call
    ledgers, shipped spans, and kernel-event deltas, then exits.

    ``faults`` carries worker-side chaos triples (hang/slow, see
    :meth:`repro.faults.worker.WorkerFaultPlan.worker_side`), applied
    via :func:`repro.sim.supervisor.chaos_pause` before handling the
    matching command. Recovery respawns pass ``()``.
    """
    tracer = obs.active_tracer()
    spans_before = len(tracer) if tracer is not None else 0
    events_before = kernel.events_consumed()
    layers_before = layer_counts()
    cells = [(spec, *_build_cell(config, scenario, spec, constants,
                                 total_devices, runner_kwargs))
             for spec in specs]
    op = 0
    try:
        while True:
            command, argument = conn.recv()
            op += 1
            chaos_pause(faults, op)
            if command == "advance":
                status = {}
                fresh: List[CloudCall] = []
                for spec, runner, boundary in cells:
                    runner.advance_to(argument)
                    fresh.extend(boundary.take_fresh())
                    if runner.finished:
                        status[spec.index] = runner.makespan
                conn.send(("calls", (fresh, status)))
            elif command == "finish":
                layers_after = layer_counts()
                payload = {
                    "results": [(spec.index,
                                 runner.finish(duration_override=argument),
                                 boundary.calls)
                                for spec, runner, boundary in cells],
                    "sim_events": kernel.events_consumed() - events_before,
                    "layer_events": {
                        layer: layers_after[layer] - layers_before[layer]
                        for layer in layers_after},
                    "spans": (tuple(tracer.take_from(spans_before))
                              if tracer is not None else None),
                }
                conn.send(("result", payload))
                return
            else:
                raise ProtocolError(f"unknown shard command {command!r}")
    except (EOFError, BrokenPipeError, KeyboardInterrupt):
        return
    finally:
        conn.close()


class _LocalCells:
    """In-process executor for one shard's cells.

    The fallback arm of the supervised handle — serves the same
    ``request(command, argument) -> payload`` shapes as
    :func:`_worker_main`, so :class:`~repro.sim.supervisor.
    SupervisedConnection` can replay a dead worker's journal onto it
    verbatim. Used when one worker collapses to in-process scheduling,
    when no process can be spawned, and as the end of the degradation
    ladder after the respawn retry budget.
    """

    def __init__(self, config, scenario, specs: List[CellSpec],
                 constants, total_devices: int, runner_kwargs: Dict):
        self._cells = [
            (spec, *_build_cell(config, scenario, spec, constants,
                                total_devices, runner_kwargs))
            for spec in specs]

    def request(self, command: str, argument) -> object:
        if command == "advance":
            status = {}
            fresh: List[CloudCall] = []
            for spec, runner, boundary in self._cells:
                runner.advance_to(argument)
                fresh.extend(boundary.take_fresh())
                if runner.finished:
                    status[spec.index] = runner.makespan
            return fresh, status
        if command == "finish":
            return {
                "results": [(spec.index,
                             runner.finish(duration_override=argument),
                             boundary.calls)
                            for spec, runner, boundary in self._cells],
                # In-process cells dispatch on this process's kernel
                # counters, which total_events_consumed() already covers.
                "sim_events": 0,
                "layer_events": {},
                "spans": None,  # already on this process's tracer
            }
        raise ProtocolError(f"unknown shard command {command!r}")


class _Shard:
    """Driver-side handle for one scheduling group of cells.

    Runs its cells in a worker process under a
    :class:`~repro.sim.supervisor.SupervisedConnection` — deadline
    watchdog, death/hang detection, deterministic journal-replay
    recovery — falling back to in-process execution when no process can
    be spawned (sandboxes and test environments routinely forbid
    ``fork``) or when the respawn retry budget runs out. Every path
    produces the same bytes, see the module determinism contract.
    """

    def __init__(self, specs: List[CellSpec], config, scenario,
                 constants, total_devices: int, runner_kwargs: Dict,
                 in_process: bool, worker_id: int = 0,
                 faults: Optional[WorkerFaultPlan] = None,
                 deadline_s: float = DEADLINE_FALLBACK_S,
                 retries: int = 2):
        self.specs = specs
        faults = faults if faults is not None else WorkerFaultPlan()

        def spawn(worker_side_faults):
            import multiprocessing
            parent_conn, child_conn = multiprocessing.Pipe()
            process = multiprocessing.Process(
                target=_worker_main,
                args=(child_conn, config, scenario, specs, constants,
                      total_devices, runner_kwargs, worker_side_faults),
                daemon=True)
            process.start()
            child_conn.close()
            return parent_conn, process

        self.sup = SupervisedConnection(
            name=f"shard{worker_id}",
            spawn=spawn,
            replies={"advance": "calls", "finish": "result"},
            fallback=lambda: _LocalCells(config, scenario, specs,
                                         constants, total_devices,
                                         runner_kwargs),
            deadline_s=deadline_s,
            retries=retries,
            kill_ops=faults.kill_ops("shard", worker_id),
            worker_side_faults=faults.worker_side("shard", worker_id),
            in_process=in_process)

    @property
    def in_process(self) -> bool:
        return self.sup.in_process

    def send_advance(self, until: float) -> None:
        self.sup.send("advance", until)

    def collect_advance(self, until: float
                        ) -> Tuple[List[CloudCall], Dict[int, float]]:
        return self.sup.collect()

    def send_finish(self, duration: float) -> None:
        self.sup.send("finish", duration)

    def collect_finish(self, duration: float) -> Dict:
        return self.sup.collect()

    def close(self) -> None:
        self.sup.close()


# -- cloud region workers (sharded cloud tier) --------------------------

def _build_regions(region_specs, config, scenario, constants,
                   total_devices: int, seed: int, n_regions: int,
                   region_plans: Optional[Dict] = None,
                   serving_cfg=None) -> Dict:
    from ..serverless.region import RegionGateway, region_server_count
    gateways = {}
    for region, count in region_specs:
        serving = None
        if serving_cfg is not None:
            # Policies are mutable per-region state: rebuild them here,
            # in whichever process owns the gateway (only the picklable
            # ServingConfig crosses the pipe).
            from ..serving import ServingPolicy
            serving = ServingPolicy(
                serving_cfg,
                n_servers=region_server_count(
                    region, n_regions, constants.cluster.servers),
                cores_per_server=constants.cluster.cores_per_server)
        gateway = RegionGateway(
            config, scenario, constants, region=region,
            n_regions=n_regions, region_devices=count,
            total_devices=total_devices, seed=seed, serving=serving)
        plan = (region_plans or {}).get(region)
        if plan is not None and plan.armed:
            gateway.apply_fault_plan(plan)
        gateways[region] = gateway
    return gateways


def _region_worker_main(conn, config, scenario, region_specs, constants,
                        total_devices: int, seed: int, n_regions: int,
                        region_plans: Optional[Dict] = None,
                        faults: Tuple[Tuple[str, int, float], ...] = (),
                        serving_cfg=None) -> None:
    """Cloud worker loop: build my regions, then serve call batches.

    Protocol (parent -> worker): ``("serve", [(region, calls), ...])``
    prices each region's batch on its virtual clock and replies
    ``("served", completions)`` with ``(cell, seq, completion_s,
    breakdown)`` tuples; ``("finish", None)`` replies ``("stats",
    {region: stats})`` and exits. ``region_plans`` maps region index to
    its partitioned backend :class:`~repro.faults.FaultPlan` (simulated
    faults — kept across respawns); ``faults`` carries worker-side chaos
    triples (harness faults — disarmed on respawn).
    """
    gateways = _build_regions(region_specs, config, scenario, constants,
                              total_devices, seed, n_regions,
                              region_plans, serving_cfg=serving_cfg)
    op = 0
    try:
        while True:
            command, argument = conn.recv()
            op += 1
            chaos_pause(faults, op)
            if command == "serve":
                completions = []
                for region, calls in argument:
                    completions.extend(gateways[region].serve(calls))
                conn.send(("served", completions))
            elif command == "finish":
                conn.send(("stats", {region: gateway.stats()
                                     for region, gateway
                                     in gateways.items()}))
                return
            else:
                raise ProtocolError(f"unknown cloud command {command!r}")
    except (EOFError, BrokenPipeError, KeyboardInterrupt):
        return
    finally:
        conn.close()


class _LocalRegions:
    """In-process executor for one worker group of cloud regions
    (the supervised handle's fallback arm; payload shapes match
    :func:`_region_worker_main`)."""

    def __init__(self, region_specs, config, scenario, constants,
                 total_devices: int, seed: int, n_regions: int,
                 region_plans: Optional[Dict] = None,
                 serving_cfg=None):
        self._gateways = _build_regions(
            region_specs, config, scenario, constants, total_devices,
            seed, n_regions, region_plans, serving_cfg=serving_cfg)

    def request(self, command: str, argument) -> object:
        if command == "serve":
            completions: List = []
            for region, calls in argument:
                completions.extend(self._gateways[region].serve(calls))
            return completions
        if command == "finish":
            return {region: gateway.stats()
                    for region, gateway in self._gateways.items()}
        raise ProtocolError(f"unknown cloud command {command!r}")


class _CloudShard:
    """Driver-side handle for one worker group of cloud regions.

    Mirrors :class:`_Shard`'s supervised process-with-fallback shape:
    regions are the semantic unit and price identically wherever they
    are scheduled, so worker grouping — and supervised recovery — never
    changes the bytes.
    """

    def __init__(self, region_specs, config, scenario, constants,
                 total_devices: int, seed: int, n_regions: int,
                 in_process: bool, worker_id: int = 0,
                 faults: Optional[WorkerFaultPlan] = None,
                 deadline_s: float = DEADLINE_FALLBACK_S,
                 retries: int = 2,
                 region_plans: Optional[Dict] = None,
                 serving_cfg=None):
        self.regions = [region for region, _ in region_specs]
        faults = faults if faults is not None else WorkerFaultPlan()

        def spawn(worker_side_faults):
            import multiprocessing
            parent_conn, child_conn = multiprocessing.Pipe()
            process = multiprocessing.Process(
                target=_region_worker_main,
                args=(child_conn, config, scenario, region_specs,
                      constants, total_devices, seed, n_regions,
                      region_plans, worker_side_faults, serving_cfg),
                daemon=True)
            process.start()
            child_conn.close()
            return parent_conn, process

        self.sup = SupervisedConnection(
            name=f"cloud{worker_id}",
            spawn=spawn,
            replies={"serve": "served", "finish": "stats"},
            fallback=lambda: _LocalRegions(region_specs, config,
                                           scenario, constants,
                                           total_devices, seed,
                                           n_regions, region_plans,
                                           serving_cfg=serving_cfg),
            deadline_s=deadline_s,
            retries=retries,
            kill_ops=faults.kill_ops("cloud", worker_id),
            worker_side_faults=faults.worker_side("cloud", worker_id),
            in_process=in_process)

    @property
    def in_process(self) -> bool:
        return self.sup.in_process

    def send_serve(self, grouped) -> None:
        """``grouped`` is a list of (region, canonical-order calls)."""
        self.sup.send("serve", grouped)

    def collect_serve(self) -> List:
        return self.sup.collect()

    def finish(self) -> Dict:
        return self.sup.request("finish", None)

    def close(self) -> None:
        self.sup.close()


# -- merge helpers ------------------------------------------------------

def _merge_latencies(results: List[Tuple[int, RunResult, List[CloudCall]]],
                     name: str) -> Tuple[MetricSeries, BreakdownAggregate]:
    """Join edge/cloud task halves and merge all rows in canonical order.

    Canonical row order is ``(start time, cell, within-cell position)``
    with deferred (cloud-completing) rows positioned after the cell's
    local rows — a pure function of the cell decomposition, so the
    merged series is identical at any shard count.
    """
    rows = []
    for cell, result, calls in results:
        series = result.task_latencies
        values, times = series.values, series.times
        for position in range(len(series)):
            rows.append((float(times[position]), cell, position,
                         float(values[position]), None))
        for call in calls:
            if call.start_s is None or call.completion_s is None:
                continue  # task never completed (e.g. device died mid-run)
            latency = max(call.edge_done_s, call.completion_s) - call.start_s
            breakdown = (LatencyBreakdown(**call.edge_breakdown) +
                         LatencyBreakdown(**call.cloud_breakdown))
            rows.append((call.start_s, cell, 10 ** 9 + call.seq,
                         latency, breakdown))
    rows.sort(key=lambda row: row[:3])
    # A cell's local breakdown records were appended in lockstep with its
    # latency samples (handle_batch adds both together), so local row
    # ``position`` maps straight to ``_records[position]``.
    local_records = {cell: result.breakdowns._records
                     for cell, result, _ in results}
    latencies = MetricSeries(name)
    breakdowns = BreakdownAggregate()
    for time, cell, position, value, breakdown in rows:
        latencies.add(value, time=time)
        if breakdown is None:
            breakdown = local_records[cell][position]
        breakdowns.add(breakdown)
    return latencies, breakdowns


def _aggregate_serving(serving_cfg, serving_calls, completion_map,
                       region_stats) -> Dict[str, object]:
    """Merge per-region serving counters and price the background
    stream's end-to-end latency from the driver-side call copies.

    The region workers returned their gate/autoscaler ledgers in
    ``stats()["serving"]``; the driver still holds every serving call
    it generated, so joining completions back by ``(cell, seq)`` gives
    per-call latency without shipping call objects back over the pipe.
    """
    offered: Dict[str, int] = {}
    admitted: Dict[str, int] = {}
    shed: Dict[str, int] = {}
    scale_outs = scale_ins = 0
    shed_calls = 0
    for stats in region_stats.values():
        shed_calls += stats.get("shed_calls", 0)
        per_region = stats.get("serving") or {}
        admission = per_region.get("admission") or {}
        for key, bucket in (("offered", offered),
                            ("admitted", admitted), ("shed", shed)):
            for tenant, count in (admission.get(key) or {}).items():
                bucket[tenant] = bucket.get(tenant, 0) + count
        autoscale = per_region.get("autoscale") or {}
        scale_outs += autoscale.get("scale_outs", 0)
        scale_ins += autoscale.get("scale_ins", 0)
    latencies: List[float] = []
    for call in serving_calls:
        done = completion_map.get((call.cell, call.seq))
        if done is not None:
            call.completion_s, call.cloud_breakdown = done
            latencies.append(done[0] - call.arrival_s)
    out: Dict[str, object] = {
        "tenants": [tenant.name for tenant in serving_cfg.tenants],
        "offered_calls": len(serving_calls),
        "served_calls": len(latencies),
        "shed_calls": shed_calls,
        "offered": offered,
        "admitted": admitted,
        "shed": shed,
        "scale_outs": scale_outs,
        "scale_ins": scale_ins,
        "admission_enabled": serving_cfg.admission_enabled,
        "autoscale_enabled": serving_cfg.autoscale_enabled,
    }
    if latencies:
        import numpy
        array = numpy.asarray(latencies)
        for label, quantile in (("p50", 50.0), ("p99", 99.0),
                                ("p999", 99.9)):
            out[f"latency_{label}_s"] = round(
                float(numpy.percentile(array, quantile)), 6)
    return out


def _merge_extras(results, cloud_stats: Dict, makespan: float,
                  window_s: float, shards: int,
                  workers: int) -> Tuple[Dict, bool]:
    """Merge per-cell extras with the cloud tier's counters.

    ``cloud_stats`` carries the cloud-side keys (``cloud_completions``,
    ``cloud_makespan_s``, ``persisted_documents``, ``cold_starts``, plus
    any region/hybrid accounting) from either the monolithic gateway or
    the summed per-region gateways.
    """
    ordered = [result for _, result, _ in results]
    from ..learning.accuracy import DetectionTally
    tally = DetectionTally()
    for result in ordered:
        cell_tally = result.extras.get("tally")
        if cell_tally is not None:
            tally.correct += cell_tally.correct
            tally.false_negatives += cell_tally.false_negatives
            tally.false_positives += cell_tally.false_positives
            tally.true_negatives += cell_tally.true_negatives
    failed: List[str] = []
    for result in ordered:
        failed.extend(result.extras.get("failed_devices", []))
    first = ordered[0].extras
    extras: Dict[str, object] = {
        "makespan_s": makespan,
        "targets": sum(r.extras["targets"] for r in ordered),
        "recognition_tier": first["recognition_tier"],
        "cloud_fraction": first["cloud_fraction"],
        "tally": tally,
        "failed_devices": failed,
        "cells": len(ordered),
        "shards": shards,
        "shard_workers": workers,
        "window_s": window_s,
    }
    extras.update(cloud_stats)
    if "unique_people" in first:
        extras["unique_people"] = sum(
            r.extras["unique_people"] for r in ordered)
    else:
        extras["items_found"] = sum(
            r.extras["items_found"] for r in ordered)
    completed = all(r.completed for r in ordered)
    return extras, completed


# -- driver -------------------------------------------------------------

def resolve_window(constants: PaperConstants,
                   window_s: Optional[float] = None) -> float:
    """Barrier window: configured value clamped to the causal minimum."""
    if window_s is None:
        configured = os.environ.get("REPRO_SHARD_WINDOW", "")
        window_s = float(configured) if configured else DEFAULT_WINDOW_S
    if window_s <= 0:
        raise ValueError("barrier window must be positive")
    return max(window_s, boundary_lookahead(constants))


def run_sharded(config: PlatformConfig, scenario, n_devices: int,
                seed: int = 0, shards: int = 1,
                cell_devices: int = DEFAULT_CELL_DEVICES,
                window_s: Optional[float] = None,
                constants: PaperConstants = DEFAULT,
                device_faults: Sequence[Tuple[int, float]] = (),
                cloud_shards: int = 0,
                region_devices: int = DEFAULT_REGION_DEVICES,
                exact_devices: Optional[int] = None,
                fault_plan=None,
                worker_faults: Optional[WorkerFaultPlan] = None,
                worker_deadline_s: Optional[float] = None,
                worker_retries: Optional[int] = None,
                serving=None,
                **runner_kwargs) -> RunResult:
    """Run one scenario with the swarm decomposed into cells over
    ``shards`` worker processes; returns a merged :class:`RunResult`
    byte-identical at any ``shards`` value.

    ``cloud_shards >= 1`` additionally decomposes the *cloud* tier into
    per-region controller slices (:class:`~repro.serverless.region.
    RegionGateway`) scheduled over up to ``cloud_shards`` worker groups;
    region membership is a pure function of the cell plan and
    ``region_devices``, so rows are identical at any
    ``(shards, cloud_shards)`` combination. ``exact_devices`` arms a
    hybrid run: cells past the first ``exact_devices`` devices become
    mean-field aggregates whose cloud load is injected as calibrated
    synthetic streams (this implies a sharded cloud tier).

    ``runner_kwargs`` pass through to every cell's
    :class:`~repro.platforms.scenario_runner.ScenarioRunner` (e.g.
    ``frame_mb``, ``fps``, ``passes``, ``vector_edge``,
    ``analytic_net``). ``device_faults`` is a partitioned fault plan's
    device-crash schedule as (global index, time) pairs — see
    :meth:`repro.faults.FaultPlan.partition`. Alternatively pass a whole
    :class:`~repro.faults.FaultPlan` as ``fault_plan`` and the driver
    partitions it itself: device crashes route to their owning cells and
    (in cloud-armed runs) backend events arm every
    :class:`~repro.serverless.region.RegionGateway` via
    :meth:`~repro.serverless.region.RegionGateway.apply_fault_plan`
    (monolithic-gateway runs apply only the device-crash slice).

    Worker supervision (:mod:`repro.sim.supervisor`): every worker pipe
    is deadline-guarded (``worker_deadline_s`` /
    ``REPRO_WORKER_DEADLINE``, default ``max(60 s, window)``), dead or
    hung workers are respawned up to ``worker_retries`` times
    (``REPRO_WORKER_RETRIES``, default 2) with their journal replayed,
    then degraded to in-process execution — every recovery path yields
    the same bytes. ``worker_faults`` (or ``REPRO_CHAOS_WORKERS``) arms
    the chaos injector of :mod:`repro.faults.worker` against the real
    worker processes; armed runs force one process per scheduling group
    so there is a real process to kill.

    ``serving`` arms the open-loop background load of
    :mod:`repro.serving`: a spec string (``REPRO_SERVING`` grammar) or a
    prebuilt :class:`~repro.serving.ServingConfig`. Serving calls are
    generated once in the driver from the seed's private serving stream
    namespace and injected into their regions through the same
    synthetic-stream machinery as hybrid mean-field load, so armed rows
    are identical at any ``(shards, cloud_shards)`` grouping; like
    hybrid runs, serving implies a sharded cloud tier
    (``cloud_shards >= 1``).
    """
    if shards < 1:
        raise ValueError("shards must be at least 1")
    if cloud_shards < 0:
        raise ValueError("cloud_shards must be non-negative")
    if config.execution not in ("cloud_faas", "hybrid"):
        raise ValueError(
            "sharded execution requires a cloud-backed platform "
            f"(got execution={config.execution!r})")
    if exact_devices is not None and cloud_shards == 0:
        # Synthetic background streams are served by the regional tier;
        # a hybrid run arms it implicitly at one worker group.
        cloud_shards = 1
    serving_cfg = None
    if serving is not None and not isinstance(serving, str):
        serving_cfg = serving  # a prebuilt ServingConfig
    else:
        serving_resolved = flags.serving_spec(serving)
        if serving_resolved:
            from ..serving import ServingConfig
            serving_cfg = ServingConfig.from_spec(serving_resolved)
    if serving_cfg is not None and cloud_shards == 0:
        # Serving load rides the regional tier (same precedent as
        # hybrid): arm it implicitly at one worker group.
        cloud_shards = 1
    if worker_faults is None:
        chaos_spec = flags.chaos_workers()
        worker_faults = (WorkerFaultPlan.parse(chaos_spec)
                         if chaos_spec else WorkerFaultPlan())
    chaos_armed = worker_faults.armed
    retries = resolve_worker_retries(worker_retries)
    partitioned = None
    if fault_plan is not None and fault_plan.armed:
        partitioned = fault_plan.partition(
            n_devices, cell_devices=cell_devices,
            region_devices=region_devices)
        device_faults = (tuple(device_faults)
                         + tuple(partitioned.device_crash_schedule()))
    region_plans = partitioned.regions if partitioned is not None else None
    specs = plan_cells(n_devices, seed=seed, cell_devices=cell_devices,
                       device_faults=device_faults,
                       exact_devices=exact_devices,
                       region_devices=region_devices)
    exact_specs = [spec for spec in specs if spec.mode == "exact"]
    meanfield_specs = [spec for spec in specs
                       if spec.mode == "meanfield"]
    shards = min(shards, len(exact_specs))
    global_constants = constants.scaled_for_swarm(n_devices)
    window = resolve_window(global_constants, window_s)
    deadline_s = resolve_worker_deadline(window, worker_deadline_s)
    analytic = runner_kwargs.get("analytic_net")
    cloud_armed = cloud_shards >= 1
    gateway = None
    cloud_handles: List[_CloudShard] = []
    shard_handles: List[_Shard] = []
    handle_of_region: Dict[int, _CloudShard] = {}
    incident_mark = incident_count()
    from ..experiments.parallel import default_workers
    if cloud_armed:
        # One RegionGateway per region of the plan, grouped round-robin
        # onto min(cloud_shards, cores) worker processes — the grouping
        # is pure scheduling, the regions are the semantic unit. Armed
        # worker chaos forces one real process per group even where the
        # core count would collapse them: the injector needs a live
        # process to kill, and the bytes don't depend on the grouping.
        region_counts: Dict[int, int] = {}
        for spec in specs:
            region_counts[spec.region] = (
                region_counts.get(spec.region, 0) + spec.n_devices)
        region_ids = sorted(region_counts)
        n_regions = region_ids[-1] + 1
        if chaos_armed:
            cloud_workers = max(1, min(cloud_shards, len(region_ids)))
        else:
            cloud_workers = max(1, min(cloud_shards, default_workers()))
        cloud_groups: List[List[Tuple[int, int]]] = [
            [] for _ in range(cloud_workers)]
        for position, region in enumerate(region_ids):
            cloud_groups[position % cloud_workers].append(
                (region, region_counts[region]))
        cloud_handles = [
            _CloudShard(group, config, scenario, global_constants,
                        n_devices, seed, n_regions,
                        in_process=(cloud_workers == 1
                                    and not chaos_armed),
                        worker_id=worker_id, faults=worker_faults,
                        deadline_s=deadline_s, retries=retries,
                        region_plans=region_plans,
                        serving_cfg=serving_cfg)
            for worker_id, group in enumerate(
                group for group in cloud_groups if group)]
        for handle in cloud_handles:
            for region in handle.regions:
                handle_of_region[region] = handle
    else:
        cloud_workers = 0
        gateway = CloudGateway(config, scenario, global_constants,
                               n_devices=n_devices, seed=seed,
                               analytic=analytic)

    try:
        # Mean-field cells (hybrid): pre-price each aggregate cell's
        # cloud load as a synthetic stream, fed into its owning region
        # alongside the exact cells' calls in canonical order.
        synthetic_by_region: Dict[int, List[CloudCall]] = {}
        synthetic_cursor: Dict[int, int] = {}
        synthetic_meter: List[Tuple[float, float]] = []
        if meanfield_specs:
            from ..edge.meanfield import synthetic_stream
            slots = max(1, min(64, math.ceil(
                MAX_SYNTHETIC_CALLS / len(meanfield_specs))))
            for spec in meanfield_specs:
                calls, events = synthetic_stream(
                    config, scenario, spec.n_devices, spec.index,
                    spec.device_id_base, n_devices, seed=seed,
                    constants=constants, slots=slots)
                for call in calls:
                    call.region = spec.region
                synthetic_by_region.setdefault(
                    spec.region, []).extend(calls)
                synthetic_meter.extend(events)

        # Open-loop serving load: generated once here in the driver (a
        # pure function of seed + spec, never of worker grouping) and
        # injected through the same synthetic-stream machinery as the
        # mean-field background.
        serving_calls: List[CloudCall] = []
        serving_truncated: Tuple[str, ...] = ()
        if serving_cfg is not None:
            from ..serving import generate_serving_calls
            serving_calls, serving_truncated = generate_serving_calls(
                serving_cfg.tenants, serving_cfg.duration_s, seed,
                scenario, n_regions=n_regions)
            for call in serving_calls:
                synthetic_by_region.setdefault(
                    call.region, []).append(call)

        for region, calls in synthetic_by_region.items():
            calls.sort(key=lambda call: call.sort_key)
            synthetic_cursor[region] = 0

        def take_synthetic(region: int, until: float) -> List[CloudCall]:
            pending = synthetic_by_region.get(region)
            if not pending:
                return []
            start = synthetic_cursor[region]
            stop = start
            while stop < len(pending) and pending[stop].arrival_s <= until:
                stop += 1
            synthetic_cursor[region] = stop
            return pending[start:stop]

        def serve_regions(batch: List[CloudCall], until: float) -> List:
            """Route one canonical-order window to the owning regions."""
            by_region: Dict[int, List[CloudCall]] = {}
            for call in batch:
                by_region.setdefault(call.region, []).append(call)
            for region in list(synthetic_by_region):
                fresh = take_synthetic(region, until)
                if fresh:
                    merged = by_region.setdefault(region, [])
                    merged.extend(fresh)
                    merged.sort(key=lambda call: call.sort_key)
            grouped_by_handle: Dict[int, List] = {}
            for region, calls in sorted(by_region.items()):
                handle = handle_of_region[region]
                grouped_by_handle.setdefault(id(handle), []).append(
                    (region, calls))
            involved = [handle for handle in cloud_handles
                        if id(handle) in grouped_by_handle]
            for handle in involved:
                handle.send_serve(grouped_by_handle[id(handle)])
            completions = []
            for handle in involved:
                completions.extend(handle.collect_serve())
            return completions

        # Worker processes are capped by the cgroup-aware core count: on
        # a quota-limited container extra processes cannot add
        # wall-clock and only pay fork + pickle overhead, so shard
        # *scheduling groups* collapse onto min(shards, cores) processes
        # (one → in-process). Results are unaffected — cells are the
        # semantic unit and simulate identically wherever they are
        # scheduled. Armed worker chaos overrides the collapse (the
        # injector needs real processes to kill or hang).
        if chaos_armed:
            workers = max(1, shards)
        else:
            workers = max(1, min(shards, default_workers()))
        groups: List[List[CellSpec]] = [[] for _ in range(workers)]
        for position, spec in enumerate(exact_specs):
            groups[position % workers].append(spec)
        shard_handles.extend(
            _Shard(group, config, scenario, constants, n_devices,
                   runner_kwargs,
                   in_process=(workers == 1 and not chaos_armed),
                   worker_id=worker_id, faults=worker_faults,
                   deadline_s=deadline_s, retries=retries)
            for worker_id, group in enumerate(groups))

        # Barrier loop: cells to t, exchange, cloud to t.
        finished: Dict[int, float] = {}
        fed_calls: List[CloudCall] = []
        cloud_completions: List = []
        barrier = 0.0
        while len(finished) < len(exact_specs):
            barrier += window
            if barrier > MAX_HORIZON_S:
                raise RuntimeError(
                    f"mission not finished by t={barrier:.0f}s; "
                    "sharded barrier loop aborted")
            for handle in shard_handles:
                handle.send_advance(barrier)
            batch: List[CloudCall] = []
            for handle in shard_handles:
                fresh, status = handle.collect_advance(barrier)
                batch.extend(fresh)
                finished.update(status)
            batch.sort(key=lambda call: call.sort_key)
            fed_calls.extend(batch)
            if cloud_armed:
                cloud_completions.extend(serve_regions(batch, barrier))
            else:
                gateway.feed(batch)
                gateway.advance_to(barrier)

        if cloud_armed:
            # Flush synthetic background arrivals past the last barrier
            # (the mean-field fleet's mission can outlast the exact
            # focus), then collect every region's counters.
            cloud_completions.extend(serve_regions([], MAX_HORIZON_S))
            region_stats: Dict[int, Dict] = {}
            for handle in cloud_handles:
                region_stats.update(handle.finish())
            cloud_done = max(
                (stats["last_completion_s"]
                 for stats in region_stats.values()), default=0.0)
        else:
            cloud_done = gateway.drain()
        makespan = max(max(finished.values()), cloud_done)

        tracer = obs.active_tracer()
        for handle in shard_handles:
            handle.send_finish(makespan)
        results: List[Tuple[int, RunResult, List[CloudCall]]] = []
        for handle in shard_handles:
            payload = handle.collect_finish(makespan)
            results.extend(payload["results"])
            if payload["sim_events"]:
                from ..experiments.parallel import absorb_worker_counts
                absorb_worker_counts(payload["sim_events"],
                                     payload["layer_events"])
            if payload["spans"] and tracer is not None:
                # Re-home worker spans under the shard's first cell
                # index (the PR 5 replica-tagging pattern across
                # processes).
                tracer.absorb(payload["spans"],
                              replica=handle.specs[0].index)
        results.sort(key=lambda item: item[0])

        if serving_cfg is not None and tracer is not None:
            # Elasticity reactions (shed instants, scale decisions) on
            # the same timeline as the call pipeline spans.
            from ..serving import emit_serving_spans
            for region in sorted(region_stats):
                per_region = region_stats[region].get("serving")
                if per_region:
                    emit_serving_spans(tracer, per_region,
                                       f"region{region}", replica=region)

        # Worker-side call copies carry the edge half; the cloud tier
        # finalized the cloud half elsewhere. Join them by (cell, seq):
        # region workers return completion tuples, the monolithic
        # gateway finalized the driver's copies in place (a no-op for
        # in-process shards, where both are the same object).
        if cloud_armed:
            completion_map = {(cell, seq): (done_s, breakdown)
                              for cell, seq, done_s, breakdown
                              in cloud_completions}
            for call in fed_calls:
                done = completion_map.get((call.cell, call.seq))
                if done is not None:
                    call.completion_s, call.cloud_breakdown = done
            for _, _, calls in results:
                for call in calls:
                    done = completion_map.get((call.cell, call.seq))
                    if done is not None:
                        call.completion_s, call.cloud_breakdown = done
        else:
            cloud_half = {(call.cell, call.seq): call
                          for call in fed_calls}
            for _, _, calls in results:
                for call in calls:
                    done = cloud_half.get((call.cell, call.seq))
                    if done is not None and done is not call:
                        call.completion_s = done.completion_s
                        call.cloud_breakdown = done.cloud_breakdown

        name = f"{scenario.key}.{config.name}"
        latencies, breakdowns = _merge_latencies(results, name)
        meter = BandwidthMeter("wireless")
        for _, result, _ in results:
            for time, megabytes in result.wireless_meter.events:
                meter.record(time, megabytes)
        for time, megabytes in synthetic_meter:
            meter.record(time, megabytes)
        energy = [account for _, result, _ in results
                  for account in result.energy_accounts]
        if cloud_armed:
            cloud_stats = {
                "cloud_completions": sum(
                    stats["completions"]
                    for stats in region_stats.values()),
                "cloud_makespan_s": cloud_done,
                "persisted_documents": sum(
                    stats["persisted_documents"]
                    for stats in region_stats.values()),
                "cold_starts": sum(
                    stats["cold_starts"]
                    for stats in region_stats.values()),
                "warm_starts": sum(
                    stats["warm_starts"]
                    for stats in region_stats.values()),
                "duplicate_launches": sum(
                    stats["duplicate_launches"]
                    for stats in region_stats.values()),
                "background_completions": sum(
                    stats["background_completions"]
                    for stats in region_stats.values()),
                "cloud_regions": len(region_stats),
                "cloud_shards": cloud_shards,
                "cloud_shard_workers": cloud_workers,
            }
            if exact_devices is not None:
                cloud_stats["exact_devices"] = exact_devices
                cloud_stats["meanfield_cells"] = len(meanfield_specs)
            if partitioned is not None and partitioned.regions:
                cloud_stats["injected_backend_faults"] = sum(
                    stats.get("injected_faults", 0)
                    for stats in region_stats.values())
            if serving_cfg is not None:
                cloud_stats["serving"] = _aggregate_serving(
                    serving_cfg, serving_calls, completion_map,
                    region_stats)
                if serving_truncated:
                    # No silent caps: name the tenants whose streams hit
                    # the per-tenant call ceiling.
                    cloud_stats["serving"]["truncated_tenants"] = list(
                        serving_truncated)
        else:
            cloud_stats = {
                "cloud_completions": gateway.completions,
                "cloud_makespan_s": gateway.last_completion_s,
                "persisted_documents": gateway.persisted_documents,
                "cold_starts": gateway.cold_starts,
            }
        extras, completed = _merge_extras(results, cloud_stats, makespan,
                                          window, shards, workers)
        incidents = incidents_since(incident_mark)
        if incidents:
            # Supervision accounting rides only on disturbed runs, so
            # unarmed extras stay exactly as before.
            extras["worker_incidents"] = [incident.to_dict()
                                          for incident in incidents]
            extras["worker_recoveries"] = len(incidents)
        return RunResult(
            platform=config.name,
            workload=scenario.key,
            task_latencies=latencies,
            breakdowns=breakdowns,
            energy_accounts=energy,
            wireless_meter=meter,
            duration_s=makespan,
            completed=completed,
            extras=extras,
        )
    finally:
        # Every exit path — normal return, invariant violation, chaos
        # gone wrong — closes pipes and reaps workers (join → terminate
        # → kill escalation lives in SupervisedConnection.close).
        for handle in shard_handles:
            handle.close()
        for handle in cloud_handles:
            handle.close()
