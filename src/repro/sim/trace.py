"""Lightweight simulation tracing.

A :class:`Tracer` records ``(time, category, payload)`` tuples. Models emit
trace records for the events the telemetry layer aggregates (task begins/ends,
bytes on the wire, battery draws). Tracing is optional: the no-op
:class:`NullTracer` costs one attribute lookup per emit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = ["TraceRecord", "Tracer", "NullTracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace event."""

    time: float
    category: str
    payload: Dict[str, Any]


class Tracer:
    """Accumulates trace records in memory, filterable by category."""

    def __init__(self) -> None:
        self._records: List[TraceRecord] = []
        self._counters: Dict[str, int] = {}

    def emit(self, time: float, category: str, **payload: Any) -> None:
        self._records.append(TraceRecord(time, category, payload))
        self._counters[category] = self._counters.get(category, 0) + 1

    def count(self, category: str) -> int:
        return self._counters.get(category, 0)

    def records(self, category: Optional[str] = None) -> Iterator[TraceRecord]:
        if category is None:
            return iter(self._records)
        return (r for r in self._records if r.category == category)

    def series(self, category: str, key: str) -> List[Tuple[float, Any]]:
        """``(time, payload[key])`` pairs for one category.

        Records without ``key`` in their payload are skipped — mixed
        payload shapes within one category are legal.
        """
        sentinel = object()
        return [(r.time, value) for r in self.records(category)
                if (value := r.payload.get(key, sentinel)) is not sentinel]

    def clear(self) -> None:
        self._records.clear()
        self._counters.clear()

    def __len__(self) -> int:
        return len(self._records)


class NullTracer:
    """Tracer that discards everything (default when tracing is off)."""

    def emit(self, time: float, category: str, **payload: Any) -> None:
        pass

    def count(self, category: str) -> int:
        return 0

    def records(self, category: Optional[str] = None):
        return iter(())

    def series(self, category: str, key: str):
        return []

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0
