"""Discrete-event simulation kernel.

This module is the substrate every HiveMind model runs on. It implements a
generator-based process model in the style of SimPy (which is not available
offline), with the pieces the rest of the repository needs:

- :class:`Environment` — event loop with a virtual clock.
- :class:`Event` — one-shot occurrence with callbacks and a value.
- :class:`Timeout` — event that fires after a virtual-time delay.
- :class:`Process` — wraps a generator; ``yield``-ing an event suspends the
  process until that event fires. A process is itself an event that succeeds
  with the generator's return value.
- :class:`Condition` / :func:`Environment.all_of` / :func:`Environment.any_of`
  — composite waits.
- :class:`Interrupt` — exception thrown into a process by
  :meth:`Process.interrupt`.

Time is a ``float`` in **seconds**. Determinism: events scheduled for the
same instant fire in (priority, insertion-order) order, so repeated runs with
the same seeds produce identical traces.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "Interrupt",
    "StopSimulation",
    "URGENT",
    "NORMAL",
]

#: Scheduling priority for interrupts and other must-run-first events.
URGENT = 0
#: Default scheduling priority.
NORMAL = 1

_PENDING = object()


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The interrupt ``cause`` (an arbitrary object supplied by the caller of
    :meth:`Process.interrupt`) is available as :attr:`cause`.
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class StopSimulation(Exception):
    """Raised internally to end :meth:`Environment.run` at an event."""


class Event:
    """A one-shot occurrence on the simulation timeline.

    An event starts *pending*, becomes *triggered* once a value (or an
    exception) is attached and it is scheduled, and *processed* after its
    callbacks have run. Callbacks are ``callable(event)``.
    """

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value and is scheduled."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded; valid only once triggered."""
        if self._ok is None:
            raise RuntimeError(f"{self!r} has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception, if it failed)."""
        if self._value is _PENDING:
            raise RuntimeError(f"{self!r} has not been triggered yet")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self, priority)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event with an exception.

        A waiting process sees the exception raised at its ``yield``.
        """
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self._defused = False
        self.env._schedule(self, priority)
        return self

    def trigger(self, event: "Event") -> None:
        """Copy outcome from another (triggered) event. Used as a callback."""
        self._ok = event._ok
        self._value = event._value
        self.env._schedule(self, NORMAL)

    def __repr__(self) -> str:
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """Event that fires ``delay`` seconds of virtual time in the future."""

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self._delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, NORMAL, delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self._delay}>"


class Initialize(Event):
    """Immediate event that starts a freshly created :class:`Process`."""

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        env._schedule(self, URGENT)


class Process(Event):
    """A running simulation process wrapping a generator.

    The generator advances whenever the event it yielded fires; yielding a
    failed event re-raises the failure inside the generator. The process is
    itself an event: it succeeds with the generator's ``return`` value, or
    fails with its uncaught exception (unless another process is waiting on
    it, the exception propagates and crashes the simulation, which keeps bugs
    loud).
    """

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = Initialize(env, self)

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting on."""
        return self._target

    @property
    def is_alive(self) -> bool:
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise RuntimeError(f"{self!r} has terminated; cannot interrupt")
        if self._target is None or isinstance(self._target, Initialize):
            raise RuntimeError("cannot interrupt a process before it starts")
        # Detach from whatever the process is waiting on, then resume it
        # urgently with the interrupt as a failure.
        if self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        hoax = Event(self.env)
        hoax._ok = False
        hoax._value = Interrupt(cause)
        hoax._defused = True
        hoax.callbacks.append(self._resume)
        self.env._schedule(hoax, URGENT)
        self._target = hoax

    def _resume(self, event: Event) -> None:
        """Advance the generator with ``event``'s outcome."""
        self.env._active_process = self
        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    event._defused = True
                    next_event = self._generator.throw(event._value)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                self.env._schedule(self, NORMAL)
                break
            except BaseException as exc:
                self._ok = False
                self._value = exc
                self._defused = False
                self.env._schedule(self, NORMAL)
                break
            if not isinstance(next_event, Event):
                self._generator.throw(TypeError(
                    f"process yielded a non-event: {next_event!r}"))
                continue
            if next_event.callbacks is not None:
                # Pending (or triggered-but-unprocessed): wait for it.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break
            # Already processed: loop immediately with its outcome.
            event = next_event
        self.env._active_process = None

    def __repr__(self) -> str:
        name = getattr(self._generator, "__name__", str(self._generator))
        return f"<Process {name} {'alive' if self.is_alive else 'dead'}>"


class Condition(Event):
    """Waits on multiple events; fires per ``evaluate(events, count)``.

    The condition's value is an ordered ``dict`` mapping each *triggered*
    constituent event to its value.
    """

    def __init__(self, env: "Environment",
                 evaluate: Callable[[List[Event], int], bool],
                 events: Iterable[Event]):
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0
        for event in self._events:
            if event.env is not env:
                raise ValueError("events from different environments")
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            if event.callbacks is None:  # already processed
                self._check(event)
            else:
                event.callbacks.append(self._check)

    @staticmethod
    def all_events(events: List[Event], count: int) -> bool:
        return len(events) == count

    @staticmethod
    def any_events(events: List[Event], count: int) -> bool:
        return count > 0 or not events

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        self._count += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(self._collect())

    def _collect(self) -> dict:
        # Only events that have actually *fired* (callbacks ran) belong in
        # the result; a Timeout carries its value from creation but has not
        # occurred until processed.
        return {e: e._value for e in self._events
                if e.callbacks is None and e._ok}


class Environment:
    """The simulation environment: clock plus event loop.

    Parameters
    ----------
    initial_time:
        Starting value of :attr:`now` (seconds).
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: List = []
        self._eid = itertools.count()
        self._active_process: Optional[Process] = None

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> Condition:
        return Condition(self, Condition.all_events, events)

    def any_of(self, events: Iterable[Event]) -> Condition:
        return Condition(self, Condition.any_events, events)

    # -- scheduling -----------------------------------------------------------
    def _schedule(self, event: Event, priority: int, delay: float = 0.0) -> None:
        heapq.heappush(self._queue,
                       (self._now + delay, priority, next(self._eid), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next scheduled event."""
        if not self._queue:
            raise RuntimeError("no scheduled events")
        self._now, _, _, event = heapq.heappop(self._queue)
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not getattr(event, "_defused", True):
            # Nobody caught this failure: crash loudly.
            raise event._value

    def run(self, until: Any = None) -> Any:
        """Run until ``until`` (a time, an event, or queue exhaustion).

        Returns the event's value when ``until`` is an event.
        """
        if until is None:
            stop_at = float("inf")
        elif isinstance(until, Event):
            if until.callbacks is None:
                return until.value
            until.callbacks.append(self._stop_callback)
            stop_at = float("inf")
        else:
            stop_at = float(until)
            if stop_at < self._now:
                raise ValueError(
                    f"until={stop_at} is in the past (now={self._now})")
        try:
            while self._queue and self.peek() <= stop_at:
                self.step()
        except StopSimulation as stop:
            return stop.args[0]
        if not isinstance(until, Event):
            # Advance the clock to the requested horizon even if the event
            # queue drained earlier, so `run(120)` always ends at t=120.
            if stop_at != float("inf"):
                self._now = max(self._now, stop_at)
            return None
        if not until.triggered:
            raise RuntimeError("run() ran out of events before `until` fired")
        return until.value

    @staticmethod
    def _stop_callback(event: Event) -> None:
        if event._ok:
            raise StopSimulation(event._value)
        event._defused = True
        raise event._value
