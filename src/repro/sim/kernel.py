"""Discrete-event simulation kernel.

This module is the substrate every HiveMind model runs on. It implements a
generator-based process model in the style of SimPy (which is not available
offline), with the pieces the rest of the repository needs:

- :class:`Environment` — event loop with a virtual clock.
- :class:`Event` — one-shot occurrence with callbacks and a value.
- :class:`Timeout` — event that fires after a virtual-time delay.
- :class:`Process` — wraps a generator; ``yield``-ing an event suspends the
  process until that event fires. A process is itself an event that succeeds
  with the generator's return value.
- :class:`Condition` / :func:`Environment.all_of` / :func:`Environment.any_of`
  — composite waits.
- :class:`Interrupt` — exception thrown into a process by
  :meth:`Process.interrupt`.

Time is a ``float`` in **seconds**. Determinism: events scheduled for the
same instant fire in (priority, insertion-order) order, so repeated runs with
the same seeds produce identical traces.

Fast paths
----------
The kernel is the hot loop of every experiment, so it trades a little
internal complexity for throughput while keeping the exact
(time, priority, insertion-order) dispatch order:

- All event classes use ``__slots__``; hot checks read ``_value``/``_ok``
  directly instead of going through properties.
- Zero-delay schedules (process starts, ``succeed``/``fail``, resource
  grants — the overwhelming majority) bypass the heap entirely: they land on
  per-priority FIFOs for the *current instant*. Insertion ids are still
  drawn from the same counter as heap entries, so merging the FIFOs with
  the heap reproduces the heap-only order bit for bit while cutting
  ``heapq`` traffic to the genuinely delayed events.
- Processed :class:`Timeout` objects and spent callback lists are recycled
  through small per-environment pools when (and only when) nothing else
  holds a reference, so the dominant yield-timeout-resume cycle allocates
  nothing in steady state.
- :meth:`Environment.run` executes a *monomorphic inlined dispatch loop*
  by default (``fast_dispatch``): the pop-next/dispatch/recycle sequence
  of :meth:`step` fused into one frame with a single merged decision tree
  per event, removing two Python calls and the double FIFO/heap
  inspection each event otherwise pays. ``REPRO_FAST_DISPATCH=0`` (or
  ``Environment(fast_dispatch=False)``) falls back to the legacy
  step-at-a-time loop, kept as the parity oracle — both loops dispatch
  the identical (time, priority, eid) sequence.

:func:`events_consumed` exposes a process-wide dispatch counter for
events/sec accounting in the benchmark harness.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from sys import getrefcount
from typing import Any, Callable, Generator, Iterable, List, Optional

from .flags import fast_dispatch_enabled

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "Interrupt",
    "StopSimulation",
    "URGENT",
    "NORMAL",
    "events_consumed",
]

#: Scheduling priority for interrupts and other must-run-first events.
URGENT = 0
#: Default scheduling priority.
NORMAL = 1

_PENDING = object()

#: Maximum number of recycled callback lists / Timeout objects kept per
#: environment. Small: pools only need to cover the events in flight at
#: one instant.
_POOL_LIMIT = 128

#: Process-wide count of dispatched events (all environments). A plain
#: one-element list so the per-event increment is a cheap item write.
_CONSUMED = [0]


def events_consumed() -> int:
    """Total events dispatched in this process since import.

    Monotone counter across all :class:`Environment` instances; the
    benchmark harness samples it before/after a run to derive events/sec.
    """
    return _CONSUMED[0]


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The interrupt ``cause`` (an arbitrary object supplied by the caller of
    :meth:`Process.interrupt`) is available as :attr:`cause`.
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class StopSimulation(Exception):
    """Raised internally to end :meth:`Environment.run` at an event."""


class Event:
    """A one-shot occurrence on the simulation timeline.

    An event starts *pending*, becomes *triggered* once a value (or an
    exception) is attached and it is scheduled, and *processed* after its
    callbacks have run. Callbacks are ``callable(event)``.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        pool = env._list_pool
        self.callbacks: Optional[List[Callable[["Event"], None]]] = (
            pool.pop() if pool else [])
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._defused = True

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value and is scheduled."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded; valid only once triggered."""
        if self._ok is None:
            raise RuntimeError(f"{self!r} has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception, if it failed)."""
        if self._value is _PENDING:
            raise RuntimeError(f"{self!r} has not been triggered yet")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self, priority)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event with an exception.

        A waiting process sees the exception raised at its ``yield``.
        """
        if self._value is not _PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self._defused = False
        self.env._schedule(self, priority)
        return self

    def trigger(self, event: "Event") -> None:
        """Copy outcome from another (triggered) event. Used as a callback."""
        if self._value is not _PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = event._ok
        self._value = event._value
        self.env._schedule(self, NORMAL)

    def __repr__(self) -> str:
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """Event that fires ``delay`` seconds of virtual time in the future."""

    __slots__ = ("_delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.env = env
        pool = env._list_pool
        self.callbacks = pool.pop() if pool else []
        self._ok = True
        self._value = value
        self._defused = True
        self._delay = delay
        env._schedule(self, NORMAL, delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self._delay}>"


class Initialize(Event):
    """Immediate event that starts a freshly created :class:`Process`."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        self.env = env
        pool = env._list_pool
        if pool:
            callbacks = pool.pop()
            callbacks.append(process._resume)
        else:
            callbacks = [process._resume]
        self.callbacks = callbacks
        self._ok = True
        self._value = None
        self._defused = True
        env._schedule(self, URGENT)


class Process(Event):
    """A running simulation process wrapping a generator.

    The generator advances whenever the event it yielded fires; yielding a
    failed event re-raises the failure inside the generator. The process is
    itself an event: it succeeds with the generator's ``return`` value, or
    fails with its uncaught exception (unless another process is waiting on
    it, the exception propagates and crashes the simulation, which keeps bugs
    loud).
    """

    __slots__ = ("_generator", "_target")

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        self.env = env
        pool = env._list_pool
        self.callbacks = pool.pop() if pool else []
        self._value = _PENDING
        self._ok = None
        self._defused = True
        self._generator = generator
        self._target: Optional[Event] = Initialize(env, self)

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting on."""
        return self._target

    @property
    def is_alive(self) -> bool:
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._value is not _PENDING:
            raise RuntimeError(f"{self!r} has terminated; cannot interrupt")
        if self._target is None or isinstance(self._target, Initialize):
            raise RuntimeError("cannot interrupt a process before it starts")
        # Detach from whatever the process is waiting on, then resume it
        # urgently with the interrupt as a failure.
        if self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        hoax = Event(self.env)
        hoax._ok = False
        hoax._value = Interrupt(cause)
        hoax._defused = True
        hoax.callbacks.append(self._resume)
        self.env._schedule(hoax, URGENT)
        self._target = hoax

    def _resume(self, event: Event) -> None:
        """Advance the generator with ``event``'s outcome."""
        env = self.env
        generator = self._generator
        env._active_process = self
        while True:
            try:
                if event._ok:
                    next_event = generator.send(event._value)
                else:
                    event._defused = True
                    next_event = generator.throw(event._value)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                env._schedule(self, NORMAL)
                break
            except BaseException as exc:
                self._ok = False
                self._value = exc
                self._defused = False
                env._schedule(self, NORMAL)
                break
            if not isinstance(next_event, Event):
                generator.throw(TypeError(
                    f"process yielded a non-event: {next_event!r}"))
                continue
            if next_event.callbacks is not None:
                # Pending (or triggered-but-unprocessed): wait for it.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break
            # Already processed: loop immediately with its outcome.
            event = next_event
        env._active_process = None

    def __repr__(self) -> str:
        name = getattr(self._generator, "__name__", str(self._generator))
        return f"<Process {name} {'alive' if self.is_alive else 'dead'}>"


class Condition(Event):
    """Waits on multiple events; fires per ``evaluate(events, count)``.

    The condition's value is an ordered ``dict`` mapping each *triggered*
    constituent event to its value.
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(self, env: "Environment",
                 evaluate: Callable[[List[Event], int], bool],
                 events: Iterable[Event]):
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0
        for event in self._events:
            if event.env is not env:
                raise ValueError("events from different environments")
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            if event.callbacks is None:  # already processed
                self._check(event)
            else:
                event.callbacks.append(self._check)

    @staticmethod
    def all_events(events: List[Event], count: int) -> bool:
        return len(events) == count

    @staticmethod
    def any_events(events: List[Event], count: int) -> bool:
        return count > 0 or not events

    def _check(self, event: Event) -> None:
        if self._value is not _PENDING:
            # Already triggered (e.g. an any_of that picked a winner), but a
            # late-failing constituent still needs defusing or its failure
            # would crash the whole simulation with nobody left to catch it.
            if not event._ok:
                event._defused = True
            return
        self._count += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(self._collect())

    def _collect(self) -> dict:
        # Only events that have actually *fired* (callbacks ran) belong in
        # the result; a Timeout carries its value from creation but has not
        # occurred until processed.
        return {e: e._value for e in self._events
                if e.callbacks is None and e._ok}


class Environment:
    """The simulation environment: clock plus event loop.

    Parameters
    ----------
    initial_time:
        Starting value of :attr:`now` (seconds).
    fast_dispatch:
        Use the inlined dispatch loop in :meth:`run` (None: the
        ``REPRO_FAST_DISPATCH`` environment default, on).
    """

    def __init__(self, initial_time: float = 0.0,
                 fast_dispatch: Optional[bool] = None):
        self._now = float(initial_time)
        self._fast_dispatch = fast_dispatch_enabled(fast_dispatch)
        #: Heap of (time, priority, eid, event) — *delayed* events only.
        self._queue: List = []
        #: Per-priority FIFOs of (eid, event) due at the current instant.
        #: Zero-delay schedules always carry the largest eid issued so far,
        #: so appending keeps each FIFO sorted by eid and the three sources
        #: merge back into exact (time, priority, eid) order.
        self._urgent: deque = deque()
        self._normal: deque = deque()
        self._eid = itertools.count()
        self._active_process: Optional[Process] = None
        #: Recycled callback lists / Timeout objects (see module docstring).
        self._list_pool: List[list] = []
        self._timeout_pool: List[Timeout] = []
        #: Events dispatched by this environment.
        self.dispatched = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        pool = self._timeout_pool
        if pool and delay >= 0:
            timeout = pool.pop()
            lpool = self._list_pool
            timeout.callbacks = lpool.pop() if lpool else []
            timeout._ok = True
            timeout._value = value
            timeout._defused = True
            timeout._delay = delay
            self._schedule(timeout, NORMAL, delay)
            return timeout
        return Timeout(self, delay, value)

    def timeout_at(self, when: float, value: Any = None) -> Timeout:
        """Timeout firing at the *absolute* time ``when``.

        ``timeout(when - now)`` re-derives the target as ``now + (when -
        now)``, which need not equal ``when`` in float64; analytic models
        that precompute exact departure instants (virtual-clock queues)
        need the exact float on the heap. ``when`` at or before ``now``
        fires at the current instant, in FIFO order.
        """
        pool = self._timeout_pool
        if pool:
            timeout = pool.pop()
            lpool = self._list_pool
            timeout.callbacks = lpool.pop() if lpool else []
        else:
            timeout = Timeout.__new__(Timeout)
            timeout.env = self
            timeout.callbacks = []
        timeout._ok = True
        timeout._value = value
        timeout._defused = True
        timeout._delay = when - self._now
        self._schedule_at(timeout, NORMAL, when)
        return timeout

    def succeed_at(self, event: Event, when: float,
                   value: Any = None) -> Event:
        """Trigger ``event`` successfully at the absolute time ``when``.

        The virtual-clock queue models arm waiter gates with this: the
        event fires at the exact precomputed float instant (see
        :meth:`timeout_at`), merging into (time, priority, eid) order with
        an eid drawn now.
        """
        if event._value is not _PENDING:
            raise RuntimeError(f"{event!r} has already been triggered")
        event._ok = True
        event._value = value
        self._schedule_at(event, NORMAL, when)
        return event

    def reserve_eid(self) -> int:
        """Draw an insertion id *now* for an event scheduled later.

        The virtual-clock queue models use this to pin a wake-up to the
        heap position an event the legacy machinery would have scheduled
        here (e.g. a service timeout) would have occupied, so same-instant
        dispatch order is identical between the two executions. Reserving
        without scheduling is harmless: ordering depends only on relative
        ids, so gaps in the sequence never reorder anything.
        """
        return next(self._eid)

    def succeed_at_eid(self, event: Event, when: float, eid: int,
                       value: Any = None) -> Event:
        """Trigger ``event`` at ``when`` under a *reserved* insertion id.

        ``when`` at or before ``now`` falls back to a fresh zero-delay
        schedule — the current-instant FIFOs require monotone ids, and in
        that regime the legacy machinery would have used a fresh id too.
        """
        if event._value is not _PENDING:
            raise RuntimeError(f"{event!r} has already been triggered")
        event._ok = True
        event._value = value
        if when <= self._now:
            self._schedule(event, NORMAL)
        else:
            heapq.heappush(self._queue, (when, NORMAL, eid, event))
        return event

    def process(self, generator: Generator) -> Process:
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> Condition:
        return Condition(self, Condition.all_events, events)

    def any_of(self, events: Iterable[Event]) -> Condition:
        return Condition(self, Condition.any_events, events)

    # -- scheduling -----------------------------------------------------------
    def _schedule(self, event: Event, priority: int, delay: float = 0.0) -> None:
        if delay == 0.0:
            if priority == NORMAL:
                self._normal.append((next(self._eid), event))
            elif priority == URGENT:
                self._urgent.append((next(self._eid), event))
            else:
                # Exotic priorities go through the heap, whose comparison
                # against the FIFOs preserves the total order.
                heapq.heappush(self._queue,
                               (self._now, priority, next(self._eid), event))
        else:
            heapq.heappush(self._queue,
                           (self._now + delay, priority, next(self._eid),
                            event))

    def _schedule_at(self, event: Event, priority: int, when: float) -> None:
        """Schedule ``event`` at the absolute instant ``when`` (exact
        float; no ``now + delay`` round trip). Past instants clamp to the
        current-instant FIFOs."""
        if when <= self._now:
            self._schedule(event, priority)
        else:
            heapq.heappush(self._queue,
                           (when, priority, next(self._eid), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if self._urgent or self._normal:
            return self._now
        return self._queue[0][0] if self._queue else float("inf")

    def _pop_next(self) -> Event:
        """Remove and return the next event in (time, priority, eid) order."""
        if self._urgent:
            fifo = self._urgent
            fifo_priority = URGENT
        elif self._normal:
            fifo = self._normal
            fifo_priority = NORMAL
        else:
            fifo = None
        queue = self._queue
        if queue:
            head = queue[0]
            if fifo is None or (
                    head[0] == self._now and
                    (head[1] < fifo_priority or
                     (head[1] == fifo_priority and head[2] < fifo[0][0]))):
                self._now, _, _, event = heapq.heappop(queue)
                return event
        if fifo is None:
            raise RuntimeError("no scheduled events")
        return fifo.popleft()[1]

    def _dispatch(self, event: Event) -> None:
        """Run ``event``'s callbacks (the body of :meth:`step`)."""
        callbacks = event.callbacks
        event.callbacks = None
        self.dispatched += 1
        _CONSUMED[0] += 1
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # Nobody caught this failure: crash loudly.
            raise event._value
        # Recycle the detached callback list if nothing else kept a
        # reference to it (refs here: the local + getrefcount's argument).
        pool = self._list_pool
        if len(pool) < _POOL_LIMIT and getrefcount(callbacks) == 2:
            callbacks.clear()
            pool.append(callbacks)

    def step(self) -> None:
        """Process the next scheduled event."""
        event = self._pop_next()
        self._dispatch(event)
        self._maybe_recycle(event)

    def _maybe_recycle(self, event: Event) -> None:
        """Pool a processed Timeout once only the caller's local holds it.

        Safe because a recycled object is, by the refcount check, reachable
        from nowhere: no process target, no condition, no user variable.
        """
        if (type(event) is Timeout and
                len(self._timeout_pool) < _POOL_LIMIT and
                getrefcount(event) == 3):
            event._value = _PENDING
            self._timeout_pool.append(event)

    def run(self, until: Any = None) -> Any:
        """Run until ``until`` (a time, an event, or queue exhaustion).

        Returns the event's value when ``until`` is an event.
        """
        if until is None:
            stop_at = float("inf")
        elif isinstance(until, Event):
            if until.callbacks is None:
                return until.value
            until.callbacks.append(self._stop_callback)
            stop_at = float("inf")
        else:
            stop_at = float(until)
            if stop_at < self._now:
                raise ValueError(
                    f"until={stop_at} is in the past (now={self._now})")
        try:
            if self._fast_dispatch:
                self._run_fast(stop_at)
            else:
                self._run_legacy(stop_at)
        except StopSimulation as stop:
            return stop.args[0]
        if not isinstance(until, Event):
            # Advance the clock to the requested horizon even if the event
            # queue drained earlier, so `run(120)` always ends at t=120.
            if stop_at != float("inf"):
                self._now = max(self._now, stop_at)
            return None
        if until._value is _PENDING:
            raise RuntimeError("run() ran out of events before `until` fired")
        return until.value

    def _run_legacy(self, stop_at: float) -> None:
        """Step-at-a-time loop (``REPRO_FAST_DISPATCH=0``): the parity
        oracle for :meth:`_run_fast`."""
        urgent = self._urgent
        normal = self._normal
        queue = self._queue
        pop_next = self._pop_next
        dispatch = self._dispatch
        timeout_pool = self._timeout_pool
        while True:
            # Current-instant FIFOs always dispatch (their time is
            # `now`, which never exceeds `stop_at` inside this loop);
            # the heap only dispatches while its head is in horizon.
            if not (urgent or normal):
                if not queue or queue[0][0] > stop_at:
                    break
            event = pop_next()
            dispatch(event)
            # Inline Timeout recycling (see _maybe_recycle): refs here
            # are the loop local plus getrefcount's argument.
            if (type(event) is Timeout and
                    len(timeout_pool) < _POOL_LIMIT and
                    getrefcount(event) == 2):
                event._value = _PENDING
                timeout_pool.append(event)

    def _run_fast(self, stop_at: float) -> None:
        """Monomorphic inlined dispatch loop (the ``fast_dispatch`` path).

        Semantically identical to :meth:`_run_legacy` — same
        (time, priority, eid) dispatch order, same recycling rules — but
        the per-event pop-next/dispatch/recycle sequence is fused into
        one frame with a single merged decision tree: the legacy path
        inspects the FIFOs and heap twice per event (once for the stop
        test, once inside ``_pop_next``) and pays two method calls; this
        loop inspects once and pays none. Verified byte-identical on
        every figure harness by ``tests/sim/test_fast_dispatch.py``.
        """
        urgent = self._urgent
        normal = self._normal
        queue = self._queue
        timeout_pool = self._timeout_pool
        list_pool = self._list_pool
        consumed = _CONSUMED
        heappop = heapq.heappop
        while True:
            # -- pop next (merged stop test + source selection) ----------
            if urgent:
                fifo = urgent
                fifo_priority = URGENT
            elif normal:
                fifo = normal
                fifo_priority = NORMAL
            else:
                fifo = None
            if queue:
                head = queue[0]
                if fifo is None:
                    if head[0] > stop_at:
                        break
                    # `head = None` drops the alias to the popped heap
                    # tuple so the recycling refcount checks below see
                    # the same counts as the legacy loop.
                    self._now, _, _, event = heappop(queue)
                    head = None
                elif (head[0] == self._now and
                        (head[1] < fifo_priority or
                         (head[1] == fifo_priority and
                          head[2] < fifo[0][0]))):
                    self._now, _, _, event = heappop(queue)
                    head = None
                else:
                    head = None
                    event = fifo.popleft()[1]
            elif fifo is None:
                break
            else:
                event = fifo.popleft()[1]
            # -- dispatch (the body of _dispatch, inlined) ---------------
            callbacks = event.callbacks
            event.callbacks = None
            self.dispatched += 1
            consumed[0] += 1
            for callback in callbacks:
                callback(event)
            if not event._ok and not event._defused:
                # Nobody caught this failure: crash loudly.
                raise event._value
            # -- recycling (see _dispatch / _maybe_recycle) --------------
            if len(list_pool) < _POOL_LIMIT and getrefcount(callbacks) == 2:
                callbacks.clear()
                list_pool.append(callbacks)
            if (type(event) is Timeout and
                    len(timeout_pool) < _POOL_LIMIT and
                    getrefcount(event) == 2):
                event._value = _PENDING
                timeout_pool.append(event)

    @staticmethod
    def _stop_callback(event: Event) -> None:
        if event._ok:
            raise StopSimulation(event._value)
        event._defused = True
        raise event._value
