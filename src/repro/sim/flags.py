"""Runtime fast-path kill switches.

Each big event-count or stepping optimisation ships with a fallback flag
so a regression can be bisected to the model, not the optimisation:

- ``REPRO_VECTOR_EDGE=0`` — legacy per-device flight/heartbeat processes
  instead of the vectorized :class:`~repro.edge.SwarmEngine` (resolved in
  :class:`~repro.platforms.scenario_runner.ScenarioRunner`).
- ``REPRO_ANALYTIC_NET=0`` — legacy ``Resource``-based FIFO queueing in
  the network, serverless, and on-device service layers instead of the
  analytic virtual-clock models (resolved here).
- ``REPRO_FAST_DISPATCH=0`` — the legacy step-at-a-time event loop in
  :meth:`~repro.sim.Environment.run` instead of the inlined monomorphic
  dispatch loop (resolved here).
- ``REPRO_BATCHED_RNG=0`` — plain scalar ``numpy`` generators instead of
  the block-refilled :class:`~repro.sim.rng.BufferedStream` draw-ahead
  wrappers (resolved here).

All default to **on**; an explicit constructor argument always wins over
the environment.

The scale-out knobs (``REPRO_SHARDS``, ``REPRO_CLOUD_SHARDS``,
``REPRO_MEANFIELD``, ``REPRO_HYBRID_EXACT``) invert the convention:
they default to **off**, so unarmed runs stay byte-identical to the
seed, and arming them opts into the sharded/aggregate runtimes of
:mod:`repro.sim.shard` and :mod:`repro.edge.meanfield`.

The supervision knobs (``REPRO_WORKER_DEADLINE``,
``REPRO_WORKER_RETRIES``, ``REPRO_CHAOS_WORKERS``) tune the worker
watchdog of :mod:`repro.sim.supervisor`; only the chaos spec changes
behaviour when armed (it injects real process faults), and it too
defaults to off.

The serving knobs follow the scale-out convention: ``REPRO_SERVING``
defaults to **off** (empty — no background load, unarmed runs
byte-identical to the seed) and a non-empty spec arms the open-loop
load generator of :mod:`repro.serving`; the sub-switches
``REPRO_SERVING_ADMISSION`` / ``REPRO_SERVING_AUTOSCALE`` default to
**on within an armed serving run** and independently disarm each
reactive policy.
"""

from __future__ import annotations

import os
from typing import Optional

__all__ = [
    "analytic_net_enabled",
    "fast_dispatch_enabled",
    "batched_rng_enabled",
    "shard_count",
    "cloud_shard_count",
    "hybrid_exact_devices",
    "meanfield_enabled",
    "worker_deadline",
    "worker_retries",
    "chaos_workers",
    "serving_spec",
    "serving_admission_enabled",
    "serving_autoscale_enabled",
]


def _enabled(variable: str, override: Optional[bool]) -> bool:
    if override is not None:
        return bool(override)
    return os.environ.get(variable, "1") != "0"


def analytic_net_enabled(override: Optional[bool] = None) -> bool:
    """Resolve the analytic-queueing flag.

    ``override`` (a constructor/runner argument) wins when given;
    otherwise ``REPRO_ANALYTIC_NET=0`` disables the fast path and any
    other value (or no variable) enables it.
    """
    return _enabled("REPRO_ANALYTIC_NET", override)


def fast_dispatch_enabled(override: Optional[bool] = None) -> bool:
    """Resolve the kernel dispatch-loop flag (``REPRO_FAST_DISPATCH``)."""
    return _enabled("REPRO_FAST_DISPATCH", override)


def batched_rng_enabled(override: Optional[bool] = None) -> bool:
    """Resolve the RNG draw-ahead flag (``REPRO_BATCHED_RNG``)."""
    return _enabled("REPRO_BATCHED_RNG", override)


def shard_count(override: Optional[int] = None) -> int:
    """Resolve the intra-run shard count (``REPRO_SHARDS``).

    Unlike the boolean fast paths this one defaults to **off** (1 shard
    = the unsharded single-process runner, byte-identical to the seed);
    ``REPRO_SHARDS=N`` or an explicit ``--shards N`` arms the sharded
    cell-decomposed runtime of :mod:`repro.sim.shard`.
    """
    if override is not None:
        if override < 1:
            raise ValueError("shard count must be at least 1")
        return int(override)
    configured = os.environ.get("REPRO_SHARDS", "")
    if not configured:
        return 1
    count = int(configured)
    return count if count >= 1 else 1


def cloud_shard_count(override: Optional[int] = None) -> int:
    """Resolve the cloud-tier shard count (``REPRO_CLOUD_SHARDS``).

    Defaults to **0 = off**: the cloud tier stays the single monolithic
    :class:`~repro.serverless.gateway.CloudGateway` and unarmed runs are
    byte-identical to the seed. ``REPRO_CLOUD_SHARDS=N`` (or
    ``--cloud-shards N``) arms the per-region controller workers of
    :mod:`repro.sim.shard`: the cloud tier decomposes into fixed-size
    regions (a pure function of the cell plan) scheduled over up to
    ``N`` worker groups — rows are identical at any ``N >= 1``.
    """
    if override is not None:
        if override < 0:
            raise ValueError("cloud shard count must be non-negative")
        return int(override)
    configured = os.environ.get("REPRO_CLOUD_SHARDS", "")
    if not configured:
        return 0
    count = int(configured)
    return count if count >= 0 else 0


def hybrid_exact_devices(override: Optional[int] = None) -> int:
    """Resolve the hybrid exact-focus size (``REPRO_HYBRID_EXACT``).

    Defaults to **0 = off** (every cell simulates exactly). ``N > 0``
    keeps the first ``N`` devices as exact cells and marks the rest of
    the cell plan ``mode="meanfield"``: aggregate cells price their load
    with :func:`repro.edge.meanfield.predict_cell` and inject it into
    the sharded cloud tier as calibrated synthetic arrival streams, so
    one run mixes a small exact focus sub-swarm with a mean-field
    background swarm.
    """
    if override is not None:
        if override < 0:
            raise ValueError("hybrid exact-device count must be non-negative")
        return int(override)
    configured = os.environ.get("REPRO_HYBRID_EXACT", "")
    if not configured:
        return 0
    count = int(configured)
    return count if count >= 0 else 0


def worker_deadline(override: Optional[float] = None) -> Optional[float]:
    """Resolve the worker reply deadline (``REPRO_WORKER_DEADLINE``).

    Returns the deadline in wall seconds, or ``None`` when neither an
    explicit argument nor the environment sets one — the caller
    (:func:`repro.sim.supervisor.resolve_worker_deadline`) then derives
    ``max(60 s, lookahead window)``.
    """
    if override is not None:
        value = float(override)
        if value <= 0:
            raise ValueError("worker deadline must be positive")
        return value
    configured = os.environ.get("REPRO_WORKER_DEADLINE", "")
    if not configured:
        return None
    value = float(configured)
    if value <= 0:
        raise ValueError("REPRO_WORKER_DEADLINE must be positive")
    return value


def worker_retries(override: Optional[int] = None) -> int:
    """Resolve the respawn retry budget (``REPRO_WORKER_RETRIES``).

    Defaults to 2 respawn attempts per incident before the supervisor
    degrades the worker to in-process execution. ``0`` skips respawning
    entirely (straight to in-process recovery).
    """
    if override is not None:
        if override < 0:
            raise ValueError("worker retries must be non-negative")
        return int(override)
    configured = os.environ.get("REPRO_WORKER_RETRIES", "")
    if not configured:
        return 2
    count = int(configured)
    return count if count >= 0 else 0


def chaos_workers(override: Optional[str] = None) -> str:
    """Resolve the worker-chaos spec (``REPRO_CHAOS_WORKERS``).

    Defaults to **off** (empty string — no harness faults, unarmed runs
    byte-identical to the seed). A non-empty value is a
    :meth:`repro.faults.worker.WorkerFaultPlan.parse` spec, e.g.
    ``kill:shard:0:2,hang:shard:1:3``.
    """
    if override is not None:
        return override
    return os.environ.get("REPRO_CHAOS_WORKERS", "")


def serving_spec(override: Optional[str] = None) -> str:
    """Resolve the open-loop serving spec (``REPRO_SERVING``).

    Defaults to **off** (empty string — no background load, unarmed
    runs byte-identical to the seed). A non-empty value is a
    :func:`repro.serving.load.parse_serving_spec` tenant list, e.g.
    ``poisson:200,onoff:80:flash:0.5`` (the bare ``1`` arms one
    default Poisson tenant). Serving load is served by the regional
    cloud tier, so an armed spec implies ``cloud_shards >= 1`` in
    :func:`repro.sim.shard.run_sharded` — the hybrid mean-field
    precedent.
    """
    if override is not None:
        return override
    return os.environ.get("REPRO_SERVING", "")


def serving_admission_enabled(override: Optional[bool] = None) -> bool:
    """Resolve the admission/shedding sub-switch
    (``REPRO_SERVING_ADMISSION``; default on, meaningful only inside a
    serving-armed run)."""
    return _enabled("REPRO_SERVING_ADMISSION", override)


def serving_autoscale_enabled(override: Optional[bool] = None) -> bool:
    """Resolve the invoker-pool autoscaling sub-switch
    (``REPRO_SERVING_AUTOSCALE``; default on, meaningful only inside a
    serving-armed run)."""
    return _enabled("REPRO_SERVING_AUTOSCALE", override)


def meanfield_enabled(override: Optional[bool] = None) -> bool:
    """Resolve the mean-field aggregate-cell flag (``REPRO_MEANFIELD``).

    Defaults to **off**: exact simulation stays the source of truth;
    ``REPRO_MEANFIELD=1`` (or ``--meanfield``) collapses homogeneous
    cells into the population model of :mod:`repro.edge.meanfield`.
    """
    if override is not None:
        return bool(override)
    return os.environ.get("REPRO_MEANFIELD", "0") == "1"
