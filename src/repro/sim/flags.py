"""Runtime fast-path kill switches.

Each big event-count or stepping optimisation ships with a fallback flag
so a regression can be bisected to the model, not the optimisation:

- ``REPRO_VECTOR_EDGE=0`` — legacy per-device flight/heartbeat processes
  instead of the vectorized :class:`~repro.edge.SwarmEngine` (resolved in
  :class:`~repro.platforms.scenario_runner.ScenarioRunner`).
- ``REPRO_ANALYTIC_NET=0`` — legacy ``Resource``-based FIFO queueing in
  the network, serverless, and on-device service layers instead of the
  analytic virtual-clock models (resolved here).
- ``REPRO_FAST_DISPATCH=0`` — the legacy step-at-a-time event loop in
  :meth:`~repro.sim.Environment.run` instead of the inlined monomorphic
  dispatch loop (resolved here).
- ``REPRO_BATCHED_RNG=0`` — plain scalar ``numpy`` generators instead of
  the block-refilled :class:`~repro.sim.rng.BufferedStream` draw-ahead
  wrappers (resolved here).

All default to **on**; an explicit constructor argument always wins over
the environment.
"""

from __future__ import annotations

import os
from typing import Optional

__all__ = [
    "analytic_net_enabled",
    "fast_dispatch_enabled",
    "batched_rng_enabled",
    "shard_count",
    "meanfield_enabled",
]


def _enabled(variable: str, override: Optional[bool]) -> bool:
    if override is not None:
        return bool(override)
    return os.environ.get(variable, "1") != "0"


def analytic_net_enabled(override: Optional[bool] = None) -> bool:
    """Resolve the analytic-queueing flag.

    ``override`` (a constructor/runner argument) wins when given;
    otherwise ``REPRO_ANALYTIC_NET=0`` disables the fast path and any
    other value (or no variable) enables it.
    """
    return _enabled("REPRO_ANALYTIC_NET", override)


def fast_dispatch_enabled(override: Optional[bool] = None) -> bool:
    """Resolve the kernel dispatch-loop flag (``REPRO_FAST_DISPATCH``)."""
    return _enabled("REPRO_FAST_DISPATCH", override)


def batched_rng_enabled(override: Optional[bool] = None) -> bool:
    """Resolve the RNG draw-ahead flag (``REPRO_BATCHED_RNG``)."""
    return _enabled("REPRO_BATCHED_RNG", override)


def shard_count(override: Optional[int] = None) -> int:
    """Resolve the intra-run shard count (``REPRO_SHARDS``).

    Unlike the boolean fast paths this one defaults to **off** (1 shard
    = the unsharded single-process runner, byte-identical to the seed);
    ``REPRO_SHARDS=N`` or an explicit ``--shards N`` arms the sharded
    cell-decomposed runtime of :mod:`repro.sim.shard`.
    """
    if override is not None:
        if override < 1:
            raise ValueError("shard count must be at least 1")
        return int(override)
    configured = os.environ.get("REPRO_SHARDS", "")
    if not configured:
        return 1
    count = int(configured)
    return count if count >= 1 else 1


def meanfield_enabled(override: Optional[bool] = None) -> bool:
    """Resolve the mean-field aggregate-cell flag (``REPRO_MEANFIELD``).

    Defaults to **off**: exact simulation stays the source of truth;
    ``REPRO_MEANFIELD=1`` (or ``--meanfield``) collapses homogeneous
    cells into the population model of :mod:`repro.edge.meanfield`.
    """
    if override is not None:
        return bool(override)
    return os.environ.get("REPRO_MEANFIELD", "0") == "1"
