"""Runtime fast-path kill switches.

Each big event-count optimisation ships with a fallback flag so a
regression can be bisected to the model, not the optimisation:

- ``REPRO_VECTOR_EDGE=0`` — legacy per-device flight/heartbeat processes
  instead of the vectorized :class:`~repro.edge.SwarmEngine` (resolved in
  :class:`~repro.platforms.scenario_runner.ScenarioRunner`).
- ``REPRO_ANALYTIC_NET=0`` — legacy ``Resource``-based FIFO queueing in
  the network and serverless service layers instead of the analytic
  virtual-clock models (resolved here).

Both default to **on**; an explicit constructor argument always wins over
the environment.
"""

from __future__ import annotations

import os
from typing import Optional

__all__ = ["analytic_net_enabled"]


def analytic_net_enabled(override: Optional[bool] = None) -> bool:
    """Resolve the analytic-queueing flag.

    ``override`` (a constructor/runner argument) wins when given;
    otherwise ``REPRO_ANALYTIC_NET=0`` disables the fast path and any
    other value (or no variable) enables it.
    """
    if override is not None:
        return bool(override)
    return os.environ.get("REPRO_ANALYTIC_NET", "1") != "0"
