"""Per-layer kernel-event accounting.

:func:`repro.sim.kernel.events_consumed` says how many events the kernel
dispatched; this module says *on whose behalf*. The edge, network, and
serverless layers tag the events they schedule at their chokepoints
(flight ticks and engine wakes; link grants/serialization/propagation;
CouchDB, Kafka, and invoker steps), and the benchmark harness reports the
breakdown so the next optimisation target is measured instead of guessed.

The counters are process-wide (like ``events_consumed``) and tagged *at
scheduling time*: a layer adds ``n`` when it schedules ``n`` kernel
events. Untagged traffic — process starts, condition bookkeeping,
harness orchestration — is reported as ``other`` (total dispatched minus
tagged). Tags are plain integer adds on one-element lists, cheap enough
for the hot paths that call them.

Pool workers count into their own process; the executor ships each
worker's deltas back (see :mod:`repro.experiments.parallel`) exactly as
it does for the total event count.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["LAYERS", "tally", "layer_counts", "layer_breakdown"]

#: The tagged layers, in reporting order.
LAYERS = ("edge", "network", "serverless")

_COUNTS: Dict[str, list] = {layer: [0] for layer in LAYERS}

#: Module-level aliases so hot paths skip the dict lookup.
_EDGE = _COUNTS["edge"]
_NETWORK = _COUNTS["network"]
_SERVERLESS = _COUNTS["serverless"]


def tally(layer: str, n: int = 1) -> None:
    """Record ``n`` kernel events scheduled on behalf of ``layer``."""
    _COUNTS[layer][0] += n


def layer_counts() -> Dict[str, int]:
    """Events tagged per layer in this process since import (monotone)."""
    return {layer: box[0] for layer, box in _COUNTS.items()}


def layer_breakdown(counts: Dict[str, int], total: int) -> Dict[str, int]:
    """Attach the untagged remainder (``other``) to a per-layer delta.

    ``counts`` maps layers to tagged-event deltas and ``total`` is the
    events-dispatched delta over the same interval. Clamped at zero: a
    layer may tag events it schedules that a run(until=...) horizon never
    dispatches.
    """
    tagged = sum(counts.get(layer, 0) for layer in LAYERS)
    out = {layer: int(counts.get(layer, 0)) for layer in LAYERS}
    out["other"] = max(0, int(total) - tagged)
    return out
