"""Shared resources for the simulation kernel.

Three primitives cover everything the HiveMind models need:

- :class:`Resource` — ``capacity`` interchangeable slots with a FIFO (or
  priority) wait queue. Used for CPU cores, wireless airtime grants, invoker
  slots.
- :class:`Container` — a continuous level between 0 and ``capacity``. Used
  for battery charge and memory pools.
- :class:`Store` — a queue of discrete items. Used for message buses
  (Kafka topics), mailboxes, and work queues.

Requests are events: a process does ``yield resource.request()`` (or uses the
request as a context manager) and resumes once the slot/amount/item is
granted.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable, Deque, List, Optional

from .kernel import Environment, Event

__all__ = ["Resource", "PriorityResource", "Preempted", "Container", "Store"]


class _FlowEvent(Event):
    """Container/Store bookkeeping event; the pending amount/item/predicate
    rides along in dedicated slots (the kernel's :class:`Event` is slotted,
    so arbitrary attributes cannot be attached)."""

    __slots__ = ("amount", "item", "predicate")


class Request(Event):
    """A pending claim on one :class:`Resource` slot."""

    __slots__ = ("resource", "usage_since")

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        self.usage_since: Optional[float] = None
        resource._do_request(self)

    # Context-manager protocol: ``with res.request() as req: yield req``.
    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw a not-yet-granted request."""
        self.resource._cancel(self)


class PriorityRequest(Request):
    """A request with a priority (lower value = more urgent)."""

    __slots__ = ("priority", "time")

    def __init__(self, resource: "Resource", priority: int = 0):
        self.priority = priority
        self.time = resource.env.now
        super().__init__(resource)


class Preempted(Exception):
    """Cause attached to an interrupt when a user is preempted."""

    def __init__(self, by: Any, usage_since: float):
        super().__init__(by, usage_since)
        self.by = by
        self.usage_since = usage_since


class Resource:
    """``capacity`` interchangeable slots with a FIFO wait queue."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self._capacity = capacity
        self.users: List[Request] = []
        self.queue: Deque[Request] = deque()

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return len(self.users)

    @property
    def utilization(self) -> float:
        """Instantaneous fraction of slots in use."""
        return len(self.users) / self._capacity

    def request(self) -> Request:
        return Request(self)

    def _do_request(self, req: Request) -> None:
        if len(self.users) < self._capacity:
            self._grant(req)
        else:
            self.queue.append(req)

    def _grant(self, req: Request) -> None:
        self.users.append(req)
        req.usage_since = self.env.now
        req.succeed(req)

    def release(self, req: Request) -> None:
        """Return a granted slot; wakes the next queued request."""
        try:
            self.users.remove(req)
        except ValueError:
            raise RuntimeError("releasing a request that holds no slot")
        self._wake_next()

    def _wake_next(self) -> None:
        while self.queue and len(self.users) < self._capacity:
            self._grant(self.queue.popleft())

    def _cancel(self, req: Request) -> None:
        try:
            self.queue.remove(req)
        except ValueError:
            pass

    def resize(self, capacity: int) -> None:
        """Change capacity online (elastic pools). Shrinking never evicts
        current users; it only stops granting until usage drops below the
        new capacity."""
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._wake_next()


class PriorityResource(Resource):
    """Resource whose waiters are served lowest-``priority`` value first."""

    def __init__(self, env: Environment, capacity: int = 1):
        super().__init__(env, capacity)
        self._heap: List = []
        self._tie = itertools.count()

    def request(self, priority: int = 0) -> PriorityRequest:  # type: ignore[override]
        return PriorityRequest(self, priority)

    def _do_request(self, req: Request) -> None:
        if len(self.users) < self._capacity:
            self._grant(req)
        else:
            prio = getattr(req, "priority", 0)
            heapq.heappush(self._heap, (prio, next(self._tie), req))

    def _wake_next(self) -> None:
        while self._heap and len(self.users) < self._capacity:
            _, _, req = heapq.heappop(self._heap)
            if req.triggered:
                continue
            self._grant(req)

    def _cancel(self, req: Request) -> None:
        self._heap = [(p, t, r) for (p, t, r) in self._heap if r is not req]
        heapq.heapify(self._heap)

    @property
    def queued(self) -> int:
        return len(self._heap)


class Container:
    """A continuous quantity between 0 and ``capacity``.

    ``get`` blocks until the requested amount is available; ``put`` blocks
    until there is headroom. Amounts are floats.
    """

    def __init__(self, env: Environment, capacity: float = float("inf"),
                 init: float = 0.0):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise ValueError(f"init {init} outside [0, {capacity}]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._getters: Deque = deque()
        self._putters: Deque = deque()

    @property
    def level(self) -> float:
        return self._level

    def get(self, amount: float) -> Event:
        if amount < 0:
            raise ValueError("amount must be non-negative")
        event = _FlowEvent(self.env)
        event.amount = amount
        self._getters.append(event)
        self._drain()
        return event

    def put(self, amount: float) -> Event:
        if amount < 0:
            raise ValueError("amount must be non-negative")
        event = _FlowEvent(self.env)
        event.amount = amount
        self._putters.append(event)
        self._drain()
        return event

    def try_get(self, amount: float) -> bool:
        """Non-blocking take; returns False (and takes nothing) on shortfall."""
        if amount <= self._level:
            self._level -= amount
            self._drain()
            return True
        return False

    def _drain(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._putters and (
                    self._level + self._putters[0].amount <= self.capacity):
                event = self._putters.popleft()
                self._level += event.amount
                event.succeed(event.amount)
                progress = True
            if self._getters and self._getters[0].amount <= self._level:
                event = self._getters.popleft()
                self._level -= event.amount
                event.succeed(event.amount)
                progress = True


class Store:
    """FIFO queue of discrete items with blocking get/put."""

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        event = _FlowEvent(self.env)
        event.item = item
        self._putters.append(event)
        self._drain()
        return event

    def put_nowait(self, item: Any) -> bool:
        """Non-blocking put: append ``item`` if there is room *and* no
        earlier putter is waiting (FIFO order must hold); returns whether
        the item was accepted.

        Skips the put-event round trip a successful :meth:`put` pays —
        the caller continues inline, one kernel event earlier — while
        waiting getters are served exactly as :meth:`put` would.
        """
        if self._putters or len(self.items) >= self.capacity:
            return False
        self.items.append(item)
        self._drain()
        return True

    def get(self) -> Event:
        event = _FlowEvent(self.env)
        self._getters.append(event)
        self._drain()
        return event

    def get_where(self, predicate: Callable[[Any], bool]) -> Event:
        """Blocking get of the first item satisfying ``predicate``."""
        event = _FlowEvent(self.env)
        event.predicate = predicate
        self._getters.append(event)
        self._drain()
        return event

    #: Sentinel distinguishing "no match" from a stored None item.
    _NO_MATCH = object()

    def _match(self, event: Event) -> Any:
        predicate = getattr(event, "predicate", None)
        if predicate is None:
            return self.items.popleft() if self.items else self._NO_MATCH
        for index, item in enumerate(self.items):
            if predicate(item):
                del self.items[index]
                return item
        return self._NO_MATCH

    def _drain(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._putters and len(self.items) < self.capacity:
                event = self._putters.popleft()
                self.items.append(event.item)
                event.succeed(event.item)
                progress = True
            if self._getters and self.items:
                # Serve the first getter whose predicate (if any) matches an
                # item; a predicate getter waiting on a missing item does not
                # block plain getters behind it.
                for index, event in enumerate(self._getters):
                    item = self._match(event)
                    if item is not self._NO_MATCH:
                        del self._getters[index]
                        event.succeed(item)
                        progress = True
                        break
