"""Worker supervision: watchdogs, deterministic replay, incident records.

PRs 7–8 turned the runner into a small distributed system — shard cell
workers and cloud-region workers talking to the driver over pipes — with
no fault tolerance: every ``conn.recv()`` blocked forever and a timed-out
``join`` leaked the child. This module supplies the missing supervision
layer, used by both worker kinds in :mod:`repro.sim.shard`:

- **Deadline-guarded receives.** Every reply is awaited with
  ``poll()`` in short slices against a wall-clock deadline
  (``REPRO_WORKER_DEADLINE``, default ``max(60 s, lookahead window)`` —
  a worker that cannot advance one lookahead window of simulated time
  within that many wall seconds is considered wedged).
- **Failure taxonomy.** A dead worker (pipe EOF/OSError, or the process
  exited without replying) raises :class:`WorkerDeath`; a silent one
  raises :class:`WorkerHang` after the deadline, and the supervisor
  escalates ``terminate()`` → ``kill()`` so nothing is leaked.
- **Deterministic recovery.** Each cell/region is a pure function of
  its spec and per-entity seeded RNG stream, and the driver's command
  sequence (barrier times, canonical call batches) is itself
  deterministic. The supervisor journals every completed command, so a
  replacement worker — respawned (bounded retries + backoff) or an
  in-process fallback after the retry budget — replays the journal,
  reaching byte-identical state, then re-issues the failed command.
  Replayed replies are discarded (their rows were already merged); the
  failed command's reply was never merged, so it merges exactly once.
- **Incident records.** Every recovery emits a :class:`WorkerIncident`
  (what died, during which operation, retries spent, recovery path and
  latency) into a process-wide log that `run_sharded` surfaces in result
  extras and `run_experiment` attaches to the :class:`RunManifest`.

Chaos hooks: parent-side kills from a
:class:`repro.faults.worker.WorkerFaultPlan` are injected here (SIGKILL
right after a matching send); worker-side hangs/slows call
:func:`chaos_pause` inside the worker loop. Faults are one-shot —
recovered workers are respawned with chaos disarmed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Tuple

from . import flags

__all__ = [
    "ProtocolError", "WorkerFailure", "WorkerDeath", "WorkerHang",
    "WorkerIncident", "SupervisedConnection", "chaos_pause",
    "resolve_worker_deadline", "resolve_worker_retries",
    "can_spawn_workers", "incident_count", "incidents_since",
    "record_incident",
]

#: Deadline floor: even tiny lookahead windows get this much wall time.
DEADLINE_FLOOR_S = 60.0

#: ``poll()`` slice so death/hang checks stay responsive (wall seconds).
POLL_SLICE_S = 0.2

#: Worker-side ``hang`` faults sleep this long (far past any sane
#: deadline; the supervisor's terminate/kill escalation ends it sooner).
HANG_SLEEP_S = 3600.0

#: Backoff before respawn attempt n (n >= 1), capped.
RESPAWN_BACKOFF_S = 0.1
RESPAWN_BACKOFF_CAP_S = 2.0


class ProtocolError(RuntimeError):
    """The pipe protocol was violated (wrong reply kind or shape).

    A real exception, not an ``assert``: it must survive ``python -O``,
    where asserts vanish and a mismatched reply would silently corrupt
    the merge.
    """


class WorkerFailure(RuntimeError):
    """Base for recoverable worker failures."""

    kind = "failure"


class WorkerDeath(WorkerFailure):
    """The worker process died (EOF/broken pipe/exited without reply)."""

    kind = "death"


class WorkerHang(WorkerFailure):
    """The worker missed its reply deadline and was escalated away."""

    kind = "hang"


@dataclass
class WorkerIncident:
    """One supervised failure + recovery, for manifests and reports."""

    worker: str          # e.g. "shard0", "cloud1"
    op: str              # e.g. "advance@60.0 [op 2]"
    failure: str         # "death" | "hang" | "spawn"
    retries: int         # respawn attempts consumed
    recovery: str        # "respawned" | "in_process"
    recovery_s: float    # wall-clock latency of the recovery

    def to_dict(self) -> Dict[str, Any]:
        return {
            "worker": self.worker,
            "op": self.op,
            "failure": self.failure,
            "retries": self.retries,
            "recovery": self.recovery,
            "recovery_s": round(self.recovery_s, 6),
        }


# Process-wide incident log. `run_sharded` snapshots the length before a
# run and reads the delta after, so concurrent figure harness runs in
# one process still get per-run attribution.
_INCIDENTS: List[WorkerIncident] = []


def record_incident(incident: WorkerIncident) -> None:
    _INCIDENTS.append(incident)


def incident_count() -> int:
    return len(_INCIDENTS)


def incidents_since(mark: int) -> List[WorkerIncident]:
    return list(_INCIDENTS[mark:])


def resolve_worker_deadline(window_s: float,
                            override: Optional[float] = None) -> float:
    """Reply deadline in wall seconds.

    Explicit override wins, then ``REPRO_WORKER_DEADLINE``, then the
    derived default ``max(60 s, lookahead window)``: one barrier asks a
    worker for at most one window of simulated time, and simulated
    seconds price far below wall seconds, so a worker that cannot keep
    that pace is wedged, not slow.
    """
    configured = flags.worker_deadline(override)
    if configured is not None:
        return configured
    return max(DEADLINE_FLOOR_S, float(window_s))


def resolve_worker_retries(override: Optional[int] = None) -> int:
    return flags.worker_retries(override)


def _spawn_probe() -> None:
    pass


_CAN_SPAWN: Optional[bool] = None


def can_spawn_workers() -> bool:
    """Whether this environment can start worker processes at all
    (some sandboxes forbid fork/spawn). Probed once, cached."""
    global _CAN_SPAWN
    if _CAN_SPAWN is None:
        import multiprocessing
        try:
            process = multiprocessing.Process(target=_spawn_probe,
                                              daemon=True)
            process.start()
            process.join(10.0)
            _CAN_SPAWN = True
        except (OSError, ValueError):
            _CAN_SPAWN = False
    return _CAN_SPAWN


def chaos_pause(faults: Tuple[Tuple[str, int, float], ...],
                op: int) -> None:
    """Worker-side chaos injection: called by the worker loop before
    handling its ``op``-th command (1-based). ``faults`` holds
    ``(action, op, delay_s)`` triples from
    :meth:`WorkerFaultPlan.worker_side`."""
    for action, at_op, delay_s in faults:
        if at_op != op:
            continue
        if action == "hang":
            time.sleep(HANG_SLEEP_S)
        elif action == "slow":
            time.sleep(delay_s)


class SupervisedConnection:
    """Supervises one worker: split-phase send/collect with watchdog,
    journaled replay recovery, and escalation teardown.

    Parameters
    ----------
    name:
        Stable worker name for incidents ("shard0", "cloud1", ...).
    spawn:
        ``spawn(worker_side_faults) -> (conn, process)``. Called with
        the armed fault triples for the first spawn and ``()`` for every
        recovery respawn (faults are one-shot).
    replies:
        Command → expected reply kind (e.g. ``{"advance": "calls"}``).
    fallback:
        Zero-arg factory for an in-process executor exposing
        ``request(command, argument) -> payload``; used when
        ``in_process`` is set, when the first spawn fails (parity with
        environments without fork), and after the retry budget.
    kill_ops:
        1-based command indices after which the driver SIGKILLs the
        worker (parent-side chaos).
    """

    def __init__(self, name: str,
                 spawn: Callable[[Tuple[Tuple[str, int, float], ...]],
                                 Tuple[Any, Any]],
                 replies: Dict[str, str],
                 fallback: Callable[[], Any],
                 deadline_s: float,
                 retries: int = 2,
                 kill_ops: FrozenSet[int] = frozenset(),
                 worker_side_faults: Tuple[Tuple[str, int, float], ...] = (),
                 in_process: bool = False):
        self._name = name
        self._spawn = spawn
        self._replies = dict(replies)
        self._fallback = fallback
        self._deadline_s = float(deadline_s)
        self._retries = max(0, int(retries))
        self._kill_ops = frozenset(kill_ops)
        self._worker_side_faults = tuple(worker_side_faults)
        self._conn = None
        self._process = None
        self._local = None
        self._journal: List[Tuple[str, Any]] = []
        self._outstanding: Optional[Tuple[str, Any]] = None
        self._ops_sent = 0
        self.incidents: List[WorkerIncident] = []
        if in_process:
            self._local = fallback()
        else:
            try:
                self._conn, self._process = spawn(self._worker_side_faults)
            except (OSError, ValueError):
                # First spawn is a capability probe, not a fault: fall
                # back silently so forkless sandboxes behave exactly as
                # an explicit in_process run (and pay no retry latency).
                self._local = fallback()

    # -- introspection --------------------------------------------------
    @property
    def name(self) -> str:
        return self._name

    @property
    def in_process(self) -> bool:
        return self._local is not None

    # -- protocol -------------------------------------------------------
    def send(self, command: str, argument: Any) -> None:
        if self._outstanding is not None:
            raise ProtocolError(
                f"{self._name}: send({command!r}) while "
                f"{self._outstanding[0]!r} is still outstanding")
        if command not in self._replies:
            raise ProtocolError(f"{self._name}: unknown command "
                                f"{command!r}")
        self._outstanding = (command, argument)
        if self._local is not None:
            return
        self._ops_sent += 1
        try:
            self._conn.send((command, argument))
        except (BrokenPipeError, OSError):
            # Worker already gone; collect() will notice and recover.
            return
        if self._ops_sent in self._kill_ops:
            # Parent-side chaos: SIGKILL the worker right after the
            # send, so it dies genuinely mid-operation.
            self._process.kill()

    def collect(self) -> Any:
        if self._outstanding is None:
            raise ProtocolError(f"{self._name}: collect() with no "
                                "outstanding command")
        command, argument = self._outstanding
        self._outstanding = None
        if self._local is not None:
            return self._local.request(command, argument)
        try:
            payload = self._recv(self._replies[command])
        except WorkerFailure as failure:
            payload = self._recover(failure, command, argument)
        if self._local is None:
            self._journal.append((command, argument))
        return payload

    def request(self, command: str, argument: Any) -> Any:
        self.send(command, argument)
        return self.collect()

    # -- receive with watchdog ------------------------------------------
    def _recv(self, expected: str) -> Any:
        deadline = time.monotonic() + self._deadline_s
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise WorkerHang(
                    f"{self._name}: no reply within "
                    f"{self._deadline_s:.1f}s")
            try:
                ready = self._conn.poll(min(remaining, POLL_SLICE_S))
            except (EOFError, OSError):
                raise WorkerDeath(f"{self._name}: pipe closed") from None
            if ready:
                try:
                    message = self._conn.recv()
                except (EOFError, OSError):
                    raise WorkerDeath(
                        f"{self._name}: worker died mid-reply "
                        f"(exitcode {self._exitcode()})") from None
                if not (isinstance(message, tuple) and len(message) == 2):
                    raise ProtocolError(
                        f"{self._name}: malformed reply {message!r}")
                kind, payload = message
                if kind != expected:
                    raise ProtocolError(
                        f"{self._name}: expected {expected!r} reply, "
                        f"got {kind!r}")
                return payload
            if self._process is not None and not self._process.is_alive():
                if self._conn.poll(0):
                    continue  # drain a reply buffered before death
                raise WorkerDeath(
                    f"{self._name}: worker exited with code "
                    f"{self._exitcode()} without replying")

    def _exitcode(self):
        return None if self._process is None else self._process.exitcode

    # -- recovery -------------------------------------------------------
    def _recover(self, failure: WorkerFailure, command: str,
                 argument: Any) -> Any:
        started = time.perf_counter()
        self._close_process(grace_s=0.0)
        # Chaos faults are one-shot per original worker: a recovered
        # worker must not be re-killed into an infinite loop.
        self._kill_ops = frozenset()
        retries_used = 0
        payload = None
        recovery = None
        for attempt in range(self._retries):
            if attempt:
                time.sleep(min(RESPAWN_BACKOFF_S * (2 ** (attempt - 1)),
                               RESPAWN_BACKOFF_CAP_S))
            try:
                self._conn, self._process = self._spawn(())
            except (OSError, ValueError):
                retries_used += 1
                continue
            try:
                self._replay()
                self._conn.send((command, argument))
                payload = self._recv(self._replies[command])
                recovery = "respawned"
                break
            except (WorkerFailure, BrokenPipeError, OSError):
                retries_used += 1
                self._close_process(grace_s=0.0)
                continue
        if recovery is None:
            # Retry budget exhausted: degrade to in-process execution.
            self._local = self._fallback()
            for past_command, past_argument in self._journal:
                self._local.request(past_command, past_argument)
            payload = self._local.request(command, argument)
            recovery = "in_process"
        incident = WorkerIncident(
            worker=self._name,
            op=f"{command}@{argument!r} [op {self._ops_sent}]",
            failure=failure.kind,
            retries=retries_used,
            recovery=recovery,
            recovery_s=time.perf_counter() - started,
        )
        self.incidents.append(incident)
        record_incident(incident)
        return payload

    def _replay(self) -> None:
        """Re-issue the journal on a fresh worker; discard replies.

        Safe because replayed replies were already merged the first
        time, and the replacement worker rebuilds identical state from
        the same deterministic command sequence.
        """
        for command, argument in self._journal:
            self._conn.send((command, argument))
            self._recv(self._replies[command])

    # -- teardown -------------------------------------------------------
    def _close_process(self, grace_s: float = 5.0) -> None:
        """Close the pipe and reap the worker, escalating
        join → terminate → kill so no exit path leaks a child."""
        conn, process = self._conn, self._process
        self._conn = None
        self._process = None
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass
        if process is None:
            return
        # Closing our pipe end EOFs a healthy worker's recv(), so the
        # graceful join usually succeeds immediately.
        if grace_s > 0:
            process.join(grace_s)
        if process.is_alive():
            process.terminate()
            process.join(2.0)
        if process.is_alive():
            process.kill()
            process.join(5.0)

    def close(self) -> None:
        """Idempotent; safe on every exit path, including exceptions."""
        self._outstanding = None
        self._close_process()
