"""Deterministic named random streams.

Every stochastic model in the repository draws from a named stream derived
from a single experiment seed. Streams are independent of the order in which
they are first requested, so adding a new model never perturbs the draws of
existing ones — essential for comparing platform variants on identical
workloads (common random numbers).

Draw-ahead buffering
--------------------
Hot consumers (the shared wireless loss stream, the per-invoker jitter
streams, the per-device service-time streams) pay one ``numpy``
``Generator`` method call per draw — around a microsecond each, most of it
fixed call overhead. :meth:`RandomStreams.buffered` wraps a stream in a
:class:`BufferedStream` that refills a block of *raw* draws at a time
(``Generator.random(size=n)`` and friends) and serves scalars from the
block by list index, which is several times cheaper per draw.

The wrapper preserves the **exact** scalar draw sequence. This leans on
three properties of ``numpy``'s ``Generator`` bit stream, verified by
``tests/sim/test_rng_drawahead.py`` on the installed numpy:

1. a block draw of size ``n`` equals ``n`` scalar draws, elementwise and
   bit for bit, for every distribution used here;
2. ``lognormal(m, s)`` equals ``exp(m + s * standard_normal())`` and
   ``normal(m, s)`` equals ``m + s * standard_normal()`` bit for bit, so
   one raw standard-normal lane serves all normal-family draws with
   per-call parameters;
3. ``uniform(lo, hi)`` equals ``lo + (hi - lo) * random()`` bit for bit,
   so one raw uniform lane serves ``random`` and ``uniform``.

A wrapper therefore buffers a single raw *lane* (uniform doubles,
standard normals, or a fixed-parameter geometric/pareto lane) and
transforms popped values per call. When a consumer switches lanes
mid-buffer (e.g. chaos flips an invoker's fault rate on, adding
``random()`` calls between lognormals), the wrapper rewinds the
underlying bit generator to its pre-refill state, replays exactly the
consumed draws as one block, and starts over on the new lane — the
underlying generator is then in the precise state the scalar execution
would have reached. Consumers that keep ping-ponging between lanes would
pay a rewind per switch, so after :attr:`BufferedStream.MAX_SWITCHES`
lane switches the wrapper degrades to scalar passthrough (still exact,
no longer buffered). ``REPRO_BATCHED_RNG=0`` makes :meth:`buffered`
return the raw generator itself.
"""

from __future__ import annotations

import hashlib
import math
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from .flags import batched_rng_enabled

__all__ = ["BufferedStream", "RandomStreams"]

#: Raw-lane kinds a :class:`BufferedStream` can buffer. Parametric lanes
#: carry their (fixed) parameter so a draw with a different parameter
#: forces a lane switch instead of silently wrong values.
_UNIFORM = ("uniform",)
_NORMAL = ("normal",)


class BufferedStream:
    """Exact-parity draw-ahead wrapper around one ``numpy`` Generator.

    Implements the scalar draw methods the repository's models use
    (``random``, ``uniform``, ``normal``, ``lognormal``,
    ``standard_normal``, ``geometric``, ``pareto``). Any other attribute
    access first synchronizes the underlying generator to the exact
    scalar-equivalent state and then delegates, so unknown consumers stay
    correct (just unbuffered).
    """

    #: Lane switches tolerated before degrading to scalar passthrough.
    MAX_SWITCHES = 4

    __slots__ = ("_gen", "_block", "_buf", "_index", "_kind", "_state",
                 "_switches", "_scalar")

    def __init__(self, generator: np.random.Generator, block: int = 512):
        if block < 1:
            raise ValueError("block size must be positive")
        self._gen = generator
        self._block = block
        self._buf: List = []
        self._index = 0
        #: The latched raw lane: None until the first draw.
        self._kind: Optional[Tuple] = None
        #: Bit-generator state captured immediately before the last block
        #: refill — the rewind point for lane switches.
        self._state = None
        self._switches = 0
        self._scalar = False

    # -- lane machinery ----------------------------------------------------
    def _raw_block(self, kind: Tuple, size: int) -> np.ndarray:
        gen = self._gen
        if kind is _UNIFORM or kind[0] == "uniform":
            return gen.random(size=size)
        if kind is _NORMAL or kind[0] == "normal":
            return gen.standard_normal(size=size)
        if kind[0] == "geometric":
            return gen.geometric(kind[1], size=size)
        if kind[0] == "pareto":
            return gen.pareto(kind[1], size=size)
        raise AssertionError(f"unknown lane {kind!r}")

    def _refill(self, kind: Tuple) -> None:
        self._state = self._gen.bit_generator.state
        self._buf = self._raw_block(kind, self._block).tolist()
        self._index = 0
        self._kind = kind

    def _sync(self) -> None:
        """Rewind + replay: leave the generator in the exact state the
        scalar execution would have reached after the draws served so
        far, discarding the unconsumed tail of the buffer."""
        if self._kind is None:
            return
        self._gen.bit_generator.state = self._state
        if self._index:
            self._raw_block(self._kind, self._index)
        self._buf = []
        self._index = 0
        self._kind = None

    def _switch(self, kind: Tuple):
        """Change lanes mid-buffer (or serve the first draw ever)."""
        starting = self._kind is None
        self._sync()
        if not starting:
            self._switches += 1
            if self._switches >= self.MAX_SWITCHES:
                # Ping-ponging consumer: buffering can only waste draws
                # from here on. Stay exact, stop buffering.
                self._scalar = True
                return None
        self._refill(kind)
        return self._buf

    def _next(self, kind: Tuple) -> Union[float, int]:
        buf = self._buf
        if self._kind is not kind and self._kind != kind:
            buf = self._switch(kind)
            if buf is None:  # degraded to passthrough
                return self._raw_block(kind, None)
        elif self._index >= len(buf):
            self._refill(kind)
            buf = self._buf
        value = buf[self._index]
        self._index += 1
        return value

    # -- scalar draw methods ----------------------------------------------
    def random(self) -> float:
        if self._scalar:
            return self._gen.random()
        return self._next(_UNIFORM)

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        if self._scalar:
            return self._gen.uniform(low, high)
        return low + (high - low) * self._next(_UNIFORM)

    def standard_normal(self) -> float:
        if self._scalar:
            return self._gen.standard_normal()
        return self._next(_NORMAL)

    def normal(self, loc: float = 0.0, scale: float = 1.0) -> float:
        if self._scalar:
            return self._gen.normal(loc, scale)
        return loc + scale * self._next(_NORMAL)

    def lognormal(self, mean: float = 0.0, sigma: float = 1.0) -> float:
        if self._scalar:
            return self._gen.lognormal(mean, sigma)
        return math.exp(mean + sigma * self._next(_NORMAL))

    def geometric(self, p: float) -> int:
        if self._scalar:
            return self._gen.geometric(p)
        return self._next(("geometric", p))

    def pareto(self, a: float) -> float:
        if self._scalar:
            return self._gen.pareto(a)
        return self._next(("pareto", a))

    # -- escape hatch ------------------------------------------------------
    @property
    def generator(self) -> np.random.Generator:
        """The underlying generator, synchronized to scalar-equivalent
        state. Draws on it bypass (and invalidate) the buffer."""
        self._sync()
        return self._gen

    def __getattr__(self, name: str):
        # Cold path for distributions without a buffered implementation:
        # synchronize, then delegate to the raw generator.
        self._sync()
        return getattr(self._gen, name)

    def __repr__(self) -> str:
        return (f"BufferedStream(kind={self._kind!r}, "
                f"buffered={len(self._buf) - self._index}, "
                f"scalar={self._scalar})")


class RandomStreams:
    """Factory of independent, reproducible ``numpy`` generators.

    >>> streams = RandomStreams(seed=7)
    >>> streams.stream("network.wifi").random()  # doctest: +SKIP
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._cache: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name`` (created on first use).

        If the stream was previously wrapped by :meth:`buffered`, the
        wrapper is returned so there is a single draw-ordering authority
        per name.
        """
        generator = self._cache.get(name)
        if generator is None:
            generator = np.random.default_rng(self._derive(name))
            self._cache[name] = generator
        return generator

    def buffered(self, name: str, block: int = 512,
                 batched: Optional[bool] = None):
        """The stream for ``name`` wrapped in a :class:`BufferedStream`.

        The wrapper replaces the raw generator in the cache, so later
        ``stream(name)`` calls observe the same draw sequence. With the
        ``REPRO_BATCHED_RNG=0`` kill switch (or ``batched=False``) the
        raw generator is returned unchanged.
        """
        if not batched_rng_enabled(batched):
            return self.stream(name)
        generator = self.stream(name)
        if isinstance(generator, BufferedStream):
            return generator
        wrapper = BufferedStream(generator, block=block)
        self._cache[name] = wrapper
        return wrapper

    def _derive(self, name: str) -> int:
        digest = hashlib.sha256(
            f"{self.seed}:{name}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "little")

    def fork(self, label: str) -> "RandomStreams":
        """A child factory whose streams are disjoint from the parent's."""
        return RandomStreams(self._derive(f"fork:{label}"))

    def __repr__(self) -> str:
        return f"RandomStreams(seed={self.seed})"
