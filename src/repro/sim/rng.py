"""Deterministic named random streams.

Every stochastic model in the repository draws from a named stream derived
from a single experiment seed. Streams are independent of the order in which
they are first requested, so adding a new model never perturbs the draws of
existing ones — essential for comparing platform variants on identical
workloads (common random numbers).
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """Factory of independent, reproducible ``numpy`` generators.

    >>> streams = RandomStreams(seed=7)
    >>> streams.stream("network.wifi").random()  # doctest: +SKIP
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._cache: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name`` (created on first use)."""
        generator = self._cache.get(name)
        if generator is None:
            generator = np.random.default_rng(self._derive(name))
            self._cache[name] = generator
        return generator

    def _derive(self, name: str) -> int:
        digest = hashlib.sha256(
            f"{self.seed}:{name}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "little")

    def fork(self, label: str) -> "RandomStreams":
        """A child factory whose streams are disjoint from the parent's."""
        return RandomStreams(self._derive(f"fork:{label}"))

    def __repr__(self) -> str:
        return f"RandomStreams(seed={self.seed})"
