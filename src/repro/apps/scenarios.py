"""End-to-end multi-phase scenarios (paper section 2.1, Listing 3).

- **Scenario A — Stationary Items**: locate 15 tennis balls on a baseball
  field. Phases: route creation (A*), image collection, on-board obstacle
  avoidance (always edge), item recognition, location aggregation.
- **Scenario B — Moving People**: count 25 people who move freely, so the
  same person is photographed by several drones and must be deduplicated
  (FaceNet embedding clustering) behind a swarm-wide synchronization
  barrier.

Each spec renders its HiveMind DSL task graph with directives exactly in
the shape of the paper's Listing 3 (Parallel/Serial/Learn/Place/Persist).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..dsl import (
    DirectiveSet,
    Learn,
    Parallel,
    Persist,
    Place,
    Serial,
    Synchronize,
    Task,
    TaskGraph,
    TaskProfile,
)
from .base import AppSpec
from .suite import SUITE

__all__ = ["ScenarioSpec", "ITEM_RECOGNITION", "SCENARIO_A", "SCENARIO_B",
           "scenario"]

#: Scenario A's tennis-ball detector: a small single-class CNN — lighter
#: than the general tree-recognition model, which is why Scenario B is the
#: more computationally intensive of the two (section 2.3).
ITEM_RECOGNITION = AppSpec(
    key="ITEM", name="item_recognition",
    description="Detect tennis balls (small single-class CNN)",
    cloud_service_s=0.25, service_sigma=0.22, edge_slowdown=10.0,
    input_mb=16.0, output_mb=0.10, parallelism=8,
    edge_filter_keep=0.40, edge_filter_service_s=0.025)


@dataclass(frozen=True)
class ScenarioSpec:
    """One end-to-end multi-phase scenario."""

    key: str
    name: str
    description: str
    #: The per-batch recognition application (S2-style CNN for items,
    #: S1 FaceNet for people).
    recognition: AppSpec
    #: The aggregation/deduplication stage, if any (Scenario B).
    dedup: Optional[AppSpec]
    #: True when targets move (forces deduplication).
    moving_targets: bool
    #: Extra on-board work per batch when recognition runs at the edge
    #: (Scenario B extracts face embeddings for later deduplication even
    #: when classifying locally). Cloud-core seconds.
    edge_extra_service_s: float = 0.0

    def dsl_graph(self) -> Tuple[TaskGraph, DirectiveSet]:
        """The Listing 3 task graph for this scenario."""
        graph = TaskGraph(self.key)
        recognition_profile = self.recognition.task_profile()
        graph.add_task(Task(
            "createRoute", data_in="inputMap", data_out="outputRoute",
            code="tasks/create_route.py",
            profile=TaskProfile(0.02, output_mb=0.01),
            args={"load_balancer": "round robin"},
            children=["collectImage"]))
        graph.add_task(Task(
            "collectImage", data_out="sensorData",
            code="tasks/collect_image.py",
            profile=TaskProfile(
                0.005, input_mb=self.recognition.input_mb,
                output_mb=self.recognition.input_mb, edge_only=True),
            args={"speed": "4", "resolution": "1024p",
                  "colorFormat": "color"},
            parents=["createRoute"],
            children=["obstacleAvoidance", "recognition"]))
        graph.add_task(Task(
            "obstacleAvoidance", data_in="sensorData",
            data_out="adjustRoute", code="tasks/obstacle_avoidance.py",
            profile=TaskProfile(0.06, input_mb=4.0, output_mb=0.01,
                                edge_only=True),
            args={"algorithm": "slam"},
            parents=["collectImage"]))
        graph.add_task(Task(
            "recognition", data_in="sensorData",
            data_out="recognitionStats", code="tasks/recognition.py",
            profile=recognition_profile,
            args={"trainingData": "zoo", "algorithm": "tensorflow_zoo"},
            parents=["collectImage"],
            children=["aggregate"]))
        aggregate_profile = (
            self.dedup.task_profile() if self.dedup is not None
            else TaskProfile(0.10, input_mb=0.2, output_mb=0.05))
        # Aggregation needs the whole swarm's results: cloud-only.
        graph.add_task(Task(
            "aggregate", data_in="recognitionStats", data_out="finalList",
            code="tasks/aggregate.py",
            profile=TaskProfile(
                aggregate_profile.cloud_service_s,
                input_mb=aggregate_profile.input_mb,
                output_mb=aggregate_profile.output_mb,
                parallelism=aggregate_profile.parallelism,
                rate_hz=aggregate_profile.rate_hz,
                service_sigma=aggregate_profile.service_sigma,
                cloud_only=True),
            args={"sync": "all"},
            parents=["recognition"]))
        directives = DirectiveSet()
        Parallel(graph, "obstacleAvoidance", "recognition")
        Serial(graph, "recognition", "aggregate")
        Synchronize(graph, "aggregate", "all")
        Learn(directives, graph, "recognition", "Global")
        Place(directives, graph, "obstacleAvoidance", "Edge:all")
        Persist(directives, graph, "recognition")
        Persist(directives, graph, "aggregate")
        return graph, directives


SCENARIO_A = ScenarioSpec(
    key="ScA",
    name="stationary_items",
    description="Locate 15 tennis balls placed in a baseball field",
    recognition=ITEM_RECOGNITION,
    dedup=None,
    moving_targets=False,
)

SCENARIO_B = ScenarioSpec(
    key="ScB",
    name="moving_people",
    description="Count 25 unique moving people in a field",
    recognition=SUITE["S1"],
    dedup=SUITE["S5"],
    moving_targets=True,
    edge_extra_service_s=0.15,
)

_SCENARIOS = {"ScA": SCENARIO_A, "ScB": SCENARIO_B}


def scenario(key: str) -> ScenarioSpec:
    found = _SCENARIOS.get(key)
    if found is None:
        raise KeyError(f"unknown scenario {key!r}; valid: ScA, ScB")
    return found
