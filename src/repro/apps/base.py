"""Application model for the benchmark suite.

An :class:`AppSpec` captures everything the platform runners need to execute
one of the paper's applications (S1-S10): the processing stage's resource
profile, its per-application edge slowdown (a CNN suffers far more on a
Cortex A8 than an SVM does — this is why S3/S7 behave comparably on cloud
and edge while S1/S9/S10 do not), payload sizes, intra-task parallelism,
and whether results must return to the device (obstacle avoidance adjusts
the route in place; analytics only report upstream).

``dsl_graph`` renders the app as a HiveMind DSL task graph (collect ->
process [-> aggregate]), which is what the compiler consumes to pick a
placement (section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..dsl import DirectiveSet, Place, Task, TaskGraph, TaskProfile
from ..serverless import FunctionSpec

__all__ = ["AppSpec"]


@dataclass(frozen=True)
class AppSpec:
    """One benchmark application."""

    key: str                   # "S1" .. "S10"
    name: str
    description: str
    #: Median service seconds for one task on one cloud core.
    cloud_service_s: float
    #: Lognormal sigma of the intrinsic service-time distribution.
    service_sigma: float
    #: Slowdown of on-board execution relative to one cloud core (per-app:
    #: heavy CNNs blow past the A8's caches, light analytics do not).
    edge_slowdown: float
    #: Input payload per task (MB) — what centralized execution uploads.
    input_mb: float
    #: Result payload per task (MB).
    output_mb: float
    #: Exploitable intra-task parallelism.
    parallelism: int
    #: Tasks per second per device.
    rate_hz: float = 1.0
    #: True when the result must return to the device (course adjustment).
    response_to_device: bool = True
    #: True when the task must run on the device regardless of platform
    #: (obstacle avoidance always runs on-board to avoid catastrophic
    #: failures from network delays — section 2.1).
    edge_pinned: bool = False
    #: Container memory reservation for the serverless function.
    memory_mb: float = 256.0
    #: HiveMind's hybrid execution can split the task: a cheap on-board
    #: filtering stage (keyframe selection / crop / compress) keeps this
    #: fraction of the payload before upload (Fig 12's "partial edge task
    #: execution" that cuts network traffic). 1.0 = nothing to filter.
    edge_filter_keep: float = 1.0
    #: Cloud-core-equivalent cost of the on-board filter stage.
    edge_filter_service_s: float = 0.0

    def __post_init__(self):
        if self.cloud_service_s <= 0:
            raise ValueError("service time must be positive")
        if self.edge_slowdown <= 0:
            raise ValueError("edge slowdown must be positive")
        if self.parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        if self.rate_hz <= 0:
            raise ValueError("rate must be positive")

    # -- sampling ------------------------------------------------------------
    def sample_cloud_service(self, rng: np.random.Generator) -> float:
        """One task's intrinsic cloud service time."""
        return float(rng.lognormal(np.log(self.cloud_service_s),
                                   self.service_sigma))

    def edge_service_for(self, cloud_service_s: float,
                         device_slowdown_ratio: float = 1.0) -> float:
        """On-board seconds for a task that needs ``cloud_service_s``.

        ``device_slowdown_ratio`` rescales the drone-calibrated per-app
        slowdown for other device classes (a Raspberry Pi car is faster
        than an AR Drone's A8).
        """
        return cloud_service_s * self.edge_slowdown * device_slowdown_ratio

    # -- serverless/DSL views -----------------------------------------------
    def function_spec(self) -> FunctionSpec:
        return FunctionSpec(name=self.key.lower(), memory_mb=self.memory_mb,
                            image=f"{self.key.lower()}-image")

    def task_profile(self) -> TaskProfile:
        return TaskProfile(
            cloud_service_s=self.cloud_service_s,
            input_mb=self.input_mb,
            output_mb=self.output_mb,
            parallelism=self.parallelism,
            rate_hz=self.rate_hz,
            service_sigma=self.service_sigma,
        )

    def dsl_graph(self) -> Tuple[TaskGraph, DirectiveSet]:
        """The app as a HiveMind task graph: collect -> process."""
        graph = TaskGraph(self.key)
        graph.add_task(Task(
            "collect", data_out="sensorData",
            profile=TaskProfile(
                0.005, input_mb=self.input_mb, output_mb=self.input_mb,
                rate_hz=self.rate_hz, edge_only=True),
            children=["process"]))
        graph.add_task(Task(
            "process", data_in="sensorData", data_out="result",
            profile=self.task_profile(),
            parents=["collect"]))
        directives = DirectiveSet()
        if self.edge_pinned:
            Place(directives, graph, "process", "edge")
        return graph, directives
