"""The ten single-tier benchmark applications (paper section 2.1).

Calibration notes (all magnitudes are representative for the named
technologies; the paper reports only chart shapes):

- S1 face recognition (FaceNet): CNN inference over a 1 s frame batch.
- S2 tree recognition (TF Model Zoo CNN): slightly heavier CNN.
- S3 drone detection (SVM on orange tags): light classical model — the
  cloud/edge gap nearly vanishes (Fig 4a).
- S4 obstacle avoidance (ardrone-autonomy SVM): light, latency-critical,
  *always* on-board in the end-to-end scenarios; when benchmarked as a
  cloud job its response must return to the drone before the course can
  change, which is what makes edge execution win (Fig 4a).
- S5 people deduplication (FaceNet embeddings): heavy pairwise matching
  with a swarm-wide synchronization flavor.
- S6 maze traversal (wall follower): few tasks per second (drones move
  slowly in the maze) so task concurrency buys little (Fig 5a).
- S7 weather analytics: tiny sensor records, light computation.
- S8 soil analytics: images + humidity, moderate.
- S9 text recognition (OCR): very parallel and compute hungry — a top
  beneficiary of intra-task parallelism (Fig 5a).
- S10 SLAM: the heaviest job; ample parallelism, CPU- and memory-bound.
"""

from __future__ import annotations

from typing import Dict, List

from .base import AppSpec

__all__ = ["SUITE", "APP_KEYS", "app", "all_apps"]


def _suite() -> Dict[str, AppSpec]:
    apps = [
        AppSpec(
            key="S1", name="face_recognition",
            description="Identify human faces with FaceNet",
            cloud_service_s=0.30, service_sigma=0.25, edge_slowdown=8.0,
            input_mb=16.0, output_mb=0.20, parallelism=8,
            edge_filter_keep=0.40, edge_filter_service_s=0.03),
        AppSpec(
            key="S2", name="tree_recognition",
            description="Identify trees with a TF Model Zoo CNN",
            cloud_service_s=0.40, service_sigma=0.25, edge_slowdown=10.0,
            input_mb=16.0, output_mb=0.10, parallelism=8,
            edge_filter_keep=0.40, edge_filter_service_s=0.04),
        AppSpec(
            key="S3", name="drone_detection",
            description="Detect other drones with an SVM on orange tags",
            cloud_service_s=0.08, service_sigma=0.20, edge_slowdown=1.4,
            input_mb=4.0, output_mb=0.05, parallelism=4,
            edge_filter_keep=0.50, edge_filter_service_s=0.01),
        AppSpec(
            key="S4", name="obstacle_avoidance",
            description="Detect obstacles and adjust course in place",
            cloud_service_s=0.06, service_sigma=0.20, edge_slowdown=1.2,
            input_mb=4.0, output_mb=0.02, parallelism=2,
            response_to_device=True, edge_pinned=True),
        AppSpec(
            key="S5", name="people_deduplication",
            description="Disambiguate faces via FaceNet embeddings",
            cloud_service_s=0.50, service_sigma=0.30, edge_slowdown=12.0,
            input_mb=12.0, output_mb=0.10, parallelism=8,
            edge_filter_keep=0.45, edge_filter_service_s=0.04),
        AppSpec(
            key="S6", name="maze",
            description="Navigate a walled maze with the wall follower",
            cloud_service_s=0.90, service_sigma=0.30, edge_slowdown=4.0,
            input_mb=24.0, output_mb=0.02, parallelism=1, rate_hz=0.2,
            edge_filter_keep=0.40, edge_filter_service_s=0.05),
        AppSpec(
            key="S7", name="weather_analytics",
            description="Weather prediction from temperature/humidity",
            cloud_service_s=0.05, service_sigma=0.20, edge_slowdown=1.3,
            input_mb=0.05, output_mb=0.01, parallelism=1,
            response_to_device=False),
        AppSpec(
            key="S8", name="soil_analytics",
            description="Soil hydration from images + humidity sensor",
            cloud_service_s=0.15, service_sigma=0.22, edge_slowdown=3.0,
            input_mb=4.0, output_mb=0.05, parallelism=2,
            response_to_device=False,
            edge_filter_keep=0.50, edge_filter_service_s=0.02),
        AppSpec(
            key="S9", name="text_recognition",
            description="Image-to-text conversion of signs (OCR)",
            cloud_service_s=0.70, service_sigma=0.30, edge_slowdown=15.0,
            input_mb=8.0, output_mb=0.02, parallelism=16,
            edge_filter_keep=0.45, edge_filter_service_s=0.06),
        AppSpec(
            key="S10", name="slam",
            description="Simultaneous localization and mapping",
            cloud_service_s=1.00, service_sigma=0.30, edge_slowdown=8.0,
            input_mb=16.0, output_mb=0.50, parallelism=16,
            memory_mb=512.0,
            edge_filter_keep=0.50, edge_filter_service_s=0.08),
    ]
    return {spec.key: spec for spec in apps}


SUITE: Dict[str, AppSpec] = _suite()
APP_KEYS: List[str] = list(SUITE)


def app(key: str) -> AppSpec:
    found = SUITE.get(key)
    if found is None:
        raise KeyError(f"unknown application {key!r}; valid: {APP_KEYS}")
    return found


def all_apps() -> List[AppSpec]:
    return [SUITE[key] for key in APP_KEYS]
