"""Robotic-car scenarios (paper section 5.5).

- **Treasure Hunt**: cars navigate a space with instruction panels; each
  panel is photographed and image-to-text converted (S9-style OCR) to learn
  the next move, until the final target.
- **Maze**: cars navigate an unknown maze (wall follower, S6-style
  decisions per step).

Cars are less power-constrained than drones, so obstacle avoidance and
sensor analytics almost always run on-board; the OCR stage is the piece
worth offloading.
"""

from __future__ import annotations

from dataclasses import dataclass

from .base import AppSpec
from .suite import SUITE

__all__ = ["CarScenarioSpec", "TREASURE_HUNT", "CAR_MAZE", "car_scenario"]


@dataclass(frozen=True)
class CarScenarioSpec:
    """One robotic-car scenario."""

    key: str
    name: str
    description: str
    #: The per-step perception app (OCR for treasure hunt; wall-follower
    #: decision compute for the maze).
    perception: AppSpec
    #: Panels to find (treasure hunt) or maze side length (maze).
    panels: int = 0
    maze_side: int = 0
    #: Steps of driving between two instruction panels.
    steps_between_panels: int = 8

    def __post_init__(self):
        if self.panels == 0 and self.maze_side == 0:
            raise ValueError("scenario needs panels or a maze")


TREASURE_HUNT = CarScenarioSpec(
    key="TreasureHunt",
    name="treasure_hunt",
    description="Follow instruction panels (OCR) to a final target",
    perception=SUITE["S9"],
    panels=10,
)

CAR_MAZE = CarScenarioSpec(
    key="Maze",
    name="maze",
    description="Navigate an unknown maze with the wall follower",
    perception=SUITE["S6"],
    maze_side=12,
)

_SCENARIOS = {"TreasureHunt": TREASURE_HUNT, "Maze": CAR_MAZE}


def car_scenario(key: str) -> CarScenarioSpec:
    found = _SCENARIOS.get(key)
    if found is None:
        raise KeyError(
            f"unknown car scenario {key!r}; valid: TreasureHunt, Maze")
    return found
