"""Benchmark applications: S1-S10 suite plus end-to-end scenarios."""

from .base import AppSpec
from .car_scenarios import CAR_MAZE, TREASURE_HUNT, CarScenarioSpec, car_scenario
from .scenarios import (
    ITEM_RECOGNITION,
    SCENARIO_A,
    SCENARIO_B,
    ScenarioSpec,
    scenario,
)
from .suite import APP_KEYS, SUITE, all_apps, app

__all__ = [
    "AppSpec",
    "ITEM_RECOGNITION",
    "SUITE",
    "APP_KEYS",
    "app",
    "all_apps",
    "ScenarioSpec",
    "SCENARIO_A",
    "SCENARIO_B",
    "scenario",
    "CarScenarioSpec",
    "TREASURE_HUNT",
    "CAR_MAZE",
    "car_scenario",
]
