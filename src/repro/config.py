"""Calibration constants for the HiveMind reproduction.

Single source of truth for every physical and system constant used by the
models. Values fall in two classes:

- **Paper-stated** — taken directly from the ISCA'22 paper (section noted in
  the field comment). Examples: drone speed 4 m/s, camera 8 fps x 2 MB
  frames, two 867 Mbps access points, accelerated RPC RTT 2.1 us, heartbeat
  period 1 s / timeout 3 s, straggler threshold p90, FPGA LUT split 18 %+24 %.
- **Calibrated** — the paper gives only chart shapes (per-application service
  times, CouchDB latency, container cold-start); these are set to
  representative magnitudes for the named technologies so the reproduced
  figures match the paper's *shape* (who wins, by what factor, where
  crossovers fall). EXPERIMENTS.md records paper-vs-measured for each figure.

All times are seconds, data sizes megabytes (MB = 1e6 bytes), bandwidths
MB/s, powers watts, energies watt-hours, distances meters.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = [
    "DroneConstants",
    "CarConstants",
    "ClusterConstants",
    "WirelessConstants",
    "ServerlessConstants",
    "AccelerationConstants",
    "ControlConstants",
    "PaperConstants",
    "DEFAULT",
]

MBPS_PER_MBITPS = 1.0 / 8.0


@dataclass(frozen=True)
class DroneConstants:
    """Parrot AR. Drone 2.0 swarm parameters (paper section 2.1)."""

    count: int = 16                      # paper: 16 drones
    cpu_cores: int = 1                   # ARM Cortex A8, single core
    cpu_ghz: float = 1.0                 # paper: 1 GHz
    ram_gb: float = 2.0                  # paper: 2 GB
    flash_gb: float = 32.0               # paper: 32 GB USB flash
    frames_per_second: float = 8.0       # paper: 8 fps default
    frame_mb: float = 2.0                # paper: 2 MB per frame default
    speed_mps: float = 4.0               # paper: 4 m/s
    altitude_m: float = 5.0              # paper: 4-6 m
    fov_width_m: float = 6.7             # paper: 6.7 m x 8.75 m coverage
    fov_depth_m: float = 8.75
    # Battery (calibrated: AR Drone 2.0 packs are 11.1 Wh new; the fleet's
    # field-aged packs hold well under half that, which is what makes the
    # paper's consumed-battery percentages move visibly within ~2-minute
    # jobs).
    battery_wh: float = 4.0
    motion_power_w: float = 42.0         # hover+cruise draw
    # Sustained full-load board draw: A8 + RAM + camera ISP + USB flash
    # I/O. On-board execution visibly drains the pack (section 2.3).
    compute_power_w: float = 12.0
    compute_idle_w: float = 1.2
    radio_tx_w: float = 7.0              # WiFi TX incl. amplifier + CSMA
    radio_rx_w: float = 2.0              # contention/retry overhead
    radio_idle_w: float = 0.35
    turn_time_s: float = 1.8             # time lost per 180-degree lawnmower turn
    # Edge CPU slowdown factor relative to one cloud core, for a
    # compute-bound task (Cortex A8 vs. Xeon; calibrated).
    cloud_to_edge_slowdown: float = 9.0


@dataclass(frozen=True)
class CarConstants:
    """Robotic car swarm parameters (paper section 5.5)."""

    count: int = 14                      # paper: 14 robotic cars
    cpu_cores: int = 4                   # Raspberry Pi
    cpu_ghz: float = 1.2
    speed_mps: float = 1.2
    battery_wh: float = 37.0             # cars are less power-constrained
    motion_power_w: float = 9.0
    compute_power_w: float = 4.5
    compute_idle_w: float = 1.6
    radio_tx_w: float = 2.1
    radio_rx_w: float = 0.9
    radio_idle_w: float = 0.25
    turn_time_s: float = 1.0
    cloud_to_edge_slowdown: float = 4.0  # Pi is ~2x the A8 per core, 4 cores


@dataclass(frozen=True)
class ClusterConstants:
    """Backend server cluster (paper section 2.1)."""

    servers: int = 12                    # paper: 12 two-socket servers
    cores_per_server: int = 40           # paper: 40 cores
    ram_gb_per_server: float = 192.0     # paper: 128-256 GB
    nic_mbps: float = 10_000.0           # paper: 10 GbE NICs
    tor_mbps: float = 40_000.0           # paper: 40 Gbps ToR
    # Calibrated software-stack costs.
    sw_rpc_overhead_s: float = 45e-6     # kernel TCP/IP per-RPC CPU cost
    tor_latency_s: float = 4e-6          # store-and-forward + propagation
    nic_bandwidth_mbs: float = 10_000.0 * MBPS_PER_MBITPS


@dataclass(frozen=True)
class WirelessConstants:
    """Edge-to-cloud wireless network (paper section 2.1)."""

    access_points: int = 2               # paper: two LinkSys AC2200 routers
    ap_mbps: float = 867.0               # paper: 867 Mbps each
    # Field-distance WiFi round trip incl. TCP ack (calibrated: tens of
    # ms at 50-100 m with contention — not LAN-grade).
    base_rtt_s: float = 18e-3
    per_hop_latency_s: float = 4e-3
    loss_rate: float = 0.002             # light random loss; retransmit cost
    mtu_mb: float = 1500e-6
    # CSMA congestion collapse: per-queued-transfer goodput degradation
    # and its cap (calibrated so oversubscribed uplinks lose up to ~60%
    # goodput, the WiFi collision-collapse regime).
    contention_penalty: float = 0.01
    max_collapse: float = 1.5
    # 867 Mbps is the PHY rate; with many contending stations the MAC
    # delivers roughly this fraction as goodput (calibrated).
    mac_efficiency: float = 0.80

    @property
    def ap_mbs(self) -> float:
        """Per-access-point goodput in MB/s (MAC-efficiency adjusted)."""
        return self.ap_mbps * MBPS_PER_MBITPS * self.mac_efficiency

    @property
    def total_mbs(self) -> float:
        return self.access_points * self.ap_mbs


@dataclass(frozen=True)
class ServerlessConstants:
    """OpenWhisk-style control-plane latencies (calibrated, section 3)."""

    # Front-end (NGINX) + auth check against CouchDB.
    frontend_latency_s: float = 0.8e-3
    auth_check_s: float = 2.5e-3
    # Controller decision + Kafka publish-subscribe hop to the invoker.
    controller_decision_s: float = 1.5e-3
    kafka_hop_s: float = 2.0e-3
    # Docker container lifecycle (paper: "millisecond-level overheads",
    # Fig 6b instantiation ~22% of median latency).
    cold_start_median_s: float = 0.42
    cold_start_sigma: float = 0.35       # lognormal sigma for cold starts
    warm_start_s: float = 0.009
    # Paper section 4.3: idle containers linger 10-30 s.
    keepalive_min_s: float = 10.0
    keepalive_max_s: float = 30.0
    default_keepalive_s: float = 20.0
    # CouchDB data sharing (Fig 6c): controller round-trip for the handle
    # plus store/load at limited effective throughput.
    couchdb_handle_s: float = 9e-3
    couchdb_latency_s: float = 6e-3
    couchdb_mbs: float = 95.0
    couchdb_tail_alpha: float = 2.6      # pareto tail for compactions
    # Direct RPC data sharing between functions (Fig 6c).
    rpc_share_latency_s: float = 1.1e-3
    rpc_share_mbs: float = 950.0
    # In-memory handoff when child shares the parent's container (Fig 6c).
    inmem_latency_s: float = 40e-6
    inmem_mbs: float = 9_000.0
    # Function interference: latency inflation per colocated function on the
    # same server beyond half occupancy (serverless variability, Fig 6a).
    interference_slope: float = 0.35
    # Default per-user concurrency limit (AWS Lambda default cited: 1000).
    concurrency_limit: int = 1000
    # Scheduler/controller activation service time: the shared-state
    # bottleneck that caps a single OpenWhisk controller near ~450
    # activations/s (calibrated to production OpenWhisk deployments).
    controller_service_s: float = 2.2e-3
    # Memory reserved per container.
    container_memory_mb: float = 256.0


@dataclass(frozen=True)
class AccelerationConstants:
    """FPGA fabrics (paper sections 4.4, 4.5)."""

    # RPC offload: paper-stated round trip and single-core throughput.
    accel_rtt_s: float = 2.1e-6          # paper: 2.1 us server-to-server RTT
    accel_mrps: float = 12.4             # paper: 12.4 Mrps for 64 B RPCs
    accel_bandwidth_mbs: float = 4_600.0  # UPI-attached streaming bandwidth
    # Remote memory access between functions over the UPI fabric.
    remote_mem_latency_s: float = 3.6e-6
    remote_mem_mbs: float = 8_200.0
    # FPGA area accounting (paper: 18% LUTs remote memory, 24% RPC).
    lut_total: int = 1_150_000           # Arria 10 GX1150
    remote_mem_lut_fraction: float = 0.18
    rpc_lut_fraction: float = 0.24
    # Reconfiguration costs (section 4.5).
    hard_reconfig_s: float = 2.5         # full/partial bitstream load
    soft_reconfig_s: float = 18e-6       # soft register file write
    # Network acceleration freeing host CPU: fraction of the software
    # per-RPC CPU cost that remains with offload.
    residual_cpu_fraction: float = 0.06
    # With the cloud-side RPC stack offloaded, the endpoint keeps up with
    # line rate: fewer drops, less backpressure, better effective MAC
    # goodput on the shared medium (vs the software stack's 0.80).
    mac_efficiency_accel: float = 0.92


@dataclass(frozen=True)
class ControlConstants:
    """HiveMind controller policies (paper sections 4.2-4.6)."""

    heartbeat_period_s: float = 1.0      # paper: once per second
    heartbeat_timeout_s: float = 3.0     # paper: >3 s means failed
    straggler_percentile: float = 90.0   # paper: p90 respawn threshold
    probation_s: float = 180.0           # paper: "a few minutes"
    monitor_period_s: float = 1.0        # worker monitor sampling
    # Monitoring overhead bounds the paper verifies (<0.1% tail latency).
    monitor_overhead_fraction: float = 0.001
    # Controller redundancy (paper: two hot standbys).
    hot_standbys: int = 2
    # Load balancer default policy.
    load_balance_policy: str = "round_robin"


@dataclass(frozen=True)
class PaperConstants:
    """Bundle of every constant group, with scenario-level knobs."""

    drone: DroneConstants = field(default_factory=DroneConstants)
    car: CarConstants = field(default_factory=CarConstants)
    cluster: ClusterConstants = field(default_factory=ClusterConstants)
    wireless: WirelessConstants = field(default_factory=WirelessConstants)
    serverless: ServerlessConstants = field(default_factory=ServerlessConstants)
    accel: AccelerationConstants = field(default_factory=AccelerationConstants)
    control: ControlConstants = field(default_factory=ControlConstants)
    # Scenario A: 15 tennis balls on a baseball field (section 2.1).
    scenario_a_items: int = 15
    # Scenario B: 25 people moving on the field (section 2.1).
    scenario_b_people: int = 25
    field_width_m: float = 110.0
    field_height_m: float = 110.0
    # Single-tier job duration and repeats (section 2.3).
    job_duration_s: float = 120.0
    job_repeats: int = 10
    scenario_repeats: int = 50

    def scaled_for_swarm(self, n_devices: int) -> "PaperConstants":
        """Scale world and radio for a simulated swarm of ``n_devices``.

        Field area grows linearly with the swarm (constant work per device)
        and access points are added proportionally (the paper scales network
        links "proportionately to the real experiments" in section 5.6);
        the backend cluster stays fixed, which is what exposes centralized
        scalability bottlenecks.
        """
        if n_devices <= 0:
            raise ValueError("n_devices must be positive")
        ratio = n_devices / self.drone.count
        side = (self.field_width_m * self.field_height_m * ratio) ** 0.5
        return replace(
            self,
            drone=replace(self.drone, count=n_devices),
            wireless=replace(
                self.wireless,
                access_points=max(2, round(self.wireless.access_points * ratio)),
            ),
            field_width_m=side,
            field_height_m=side,
            scenario_a_items=max(1, round(self.scenario_a_items * ratio)),
            scenario_b_people=max(1, round(self.scenario_b_people * ratio)),
        )


#: Default constants used throughout unless an experiment overrides them.
DEFAULT = PaperConstants()
