"""Detection accuracy bookkeeping (Fig 15's correct / FN / FP bars)."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DetectionTally"]


@dataclass
class DetectionTally:
    """Counts of recognition outcomes."""

    correct: int = 0
    false_negatives: int = 0
    false_positives: int = 0
    true_negatives: int = 0

    def record_correct(self) -> None:
        self.correct += 1

    def record_false_negative(self) -> None:
        self.false_negatives += 1

    def record_false_positive(self) -> None:
        self.false_positives += 1

    def record_true_negative(self) -> None:
        self.true_negatives += 1

    @property
    def decisions(self) -> int:
        """Decisions about true sightings + clutter matches (the Fig 15
        denominator: correct + FN + FP)."""
        return self.correct + self.false_negatives + self.false_positives

    def _percent(self, count: int) -> float:
        if self.decisions == 0:
            raise ValueError("no detection decisions recorded")
        return 100.0 * count / self.decisions

    @property
    def correct_pct(self) -> float:
        return self._percent(self.correct)

    @property
    def false_negative_pct(self) -> float:
        return self._percent(self.false_negatives)

    @property
    def false_positive_pct(self) -> float:
        return self._percent(self.false_positives)

    def as_row(self) -> "tuple[float, float, float]":
        """(correct%, FN%, FP%) — one Fig 15 bar group."""
        return (self.correct_pct, self.false_negative_pct,
                self.false_positive_pct)
