"""Synthetic embedding space for the recognition workloads.

FaceNet-style recognizers map inputs into a Euclidean space where distance
corresponds to identity similarity (section 2.1). We reproduce that contract
directly: every true identity (person, or item class) is a unit-norm
centroid in R^d; an observation is the centroid plus isotropic Gaussian
sensor noise. This gives the recognition, deduplication, and continuous-
learning experiments a real signal to work against rather than scripted
accuracy numbers.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

__all__ = ["IdentitySpace"]


class IdentitySpace:
    """Ground-truth identities as centroids in an embedding space."""

    def __init__(self, n_identities: int, dim: int = 16,
                 rng: Optional[np.random.Generator] = None):
        if n_identities <= 0:
            raise ValueError("need at least one identity")
        if dim <= 1:
            raise ValueError("embedding dimension must exceed 1")
        self.dim = dim
        self._rng = rng if rng is not None else np.random.default_rng(0)
        vectors = self._rng.normal(size=(n_identities, dim))
        vectors /= np.linalg.norm(vectors, axis=1, keepdims=True)
        self.centroids: Dict[int, np.ndarray] = {
            identity: vectors[identity] for identity in range(n_identities)
        }

    @property
    def identities(self) -> List[int]:
        return sorted(self.centroids)

    def __len__(self) -> int:
        return len(self.centroids)

    def observe(self, identity: int, noise_sigma: float) -> np.ndarray:
        """One noisy observation (sensor view) of ``identity``.

        ``noise_sigma`` is the *expected norm* of the noise vector (the
        per-dimension scale is noise_sigma / sqrt(dim)), so thresholds stay
        meaningful regardless of the embedding dimension.
        """
        if identity not in self.centroids:
            raise KeyError(f"unknown identity {identity}")
        if noise_sigma < 0:
            raise ValueError("noise must be non-negative")
        noise = self._rng.normal(scale=noise_sigma / np.sqrt(self.dim),
                                 size=self.dim)
        return self.centroids[identity] + noise

    def clutter(self, scale: float = 1.0) -> np.ndarray:
        """A background (non-identity) embedding — clutter the recognizer
        may wrongly match (false-positive source)."""
        vector = self._rng.normal(size=self.dim)
        return scale * vector / np.linalg.norm(vector)

    def confusable(self, noise_sigma: float = 1.05) -> np.ndarray:
        """Background that *resembles* a random identity (a pale stone in
        a tennis-ball search): far enough that a well-trained model
        rejects it, close enough that a poorly trained one may not."""
        identity = int(self._rng.integers(len(self.centroids)))
        return self.observe(identity, noise_sigma)

    def min_centroid_separation(self) -> float:
        """Smallest pairwise distance between identities (task hardness)."""
        ids = self.identities
        best = float("inf")
        for index, a in enumerate(ids):
            for b in ids[index + 1:]:
                distance = float(np.linalg.norm(
                    self.centroids[a] - self.centroids[b]))
                best = min(best, distance)
        return best
