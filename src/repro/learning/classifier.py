"""Nearest-centroid recognition and embedding-space deduplication.

- :class:`NearestCentroidClassifier` — the recognition model: maintains a
  centroid *estimate* per identity and classifies an embedding to the
  nearest estimate within an acceptance radius (else "unknown"). Estimates
  improve as labeled observations accumulate — the hook continuous learning
  (Fig 15) exploits.
- :class:`DeduplicationEngine` — S5/Scenario B: greedy threshold clustering
  of face embeddings across devices to count unique people.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = ["NearestCentroidClassifier", "DeduplicationEngine"]


class NearestCentroidClassifier:
    """Incremental nearest-centroid model with an acceptance radius."""

    def __init__(self, dim: int, accept_radius: float = 0.8):
        if dim <= 0:
            raise ValueError("dimension must be positive")
        if accept_radius <= 0:
            raise ValueError("acceptance radius must be positive")
        self.dim = dim
        self.accept_radius = accept_radius
        self._sums: Dict[int, np.ndarray] = {}
        self._counts: Dict[int, int] = {}
        # Cached (identities, centroid-matrix) for vectorized predict;
        # invalidated on every add_observation.
        self._matrix_ids: list = []
        self._matrix: Optional[np.ndarray] = None

    @property
    def known_identities(self) -> List[int]:
        return sorted(self._sums)

    def observations_of(self, identity: int) -> int:
        return self._counts.get(identity, 0)

    def add_observation(self, identity: int,
                        embedding: np.ndarray) -> None:
        """Fold one labeled observation into the identity's estimate."""
        embedding = np.asarray(embedding, dtype=float)
        if embedding.shape != (self.dim,):
            raise ValueError(
                f"embedding shape {embedding.shape} != ({self.dim},)")
        if identity in self._sums:
            self._sums[identity] = self._sums[identity] + embedding
            self._counts[identity] += 1
        else:
            self._sums[identity] = embedding.copy()
            self._counts[identity] = 1
        self._matrix = None

    def centroid_estimate(self, identity: int) -> np.ndarray:
        if identity not in self._sums:
            raise KeyError(f"unknown identity {identity}")
        return self._sums[identity] / self._counts[identity]

    def _centroid_matrix(self) -> Optional[np.ndarray]:
        if not self._sums:
            return None
        if self._matrix is None:
            self._matrix_ids = sorted(self._sums)
            self._matrix = np.stack([
                self._sums[i] / self._counts[i] for i in self._matrix_ids])
        return self._matrix

    def predict(self, embedding: np.ndarray) -> Optional[int]:
        """Nearest identity within the acceptance radius, else None."""
        matrix = self._centroid_matrix()
        if matrix is None:
            return None
        embedding = np.asarray(embedding, dtype=float)
        distances = np.linalg.norm(matrix - embedding, axis=1)
        best = int(np.argmin(distances))
        if distances[best] > self.accept_radius:
            return None
        return self._matrix_ids[best]


class DeduplicationEngine:
    """Counts unique entities from embeddings via threshold clustering.

    Greedy: an embedding joins the first cluster whose running centroid is
    within ``merge_radius``; otherwise it founds a new cluster. The unique
    count is the number of clusters — Scenario B's "number of unique people".
    """

    def __init__(self, merge_radius: float = 0.8):
        if merge_radius <= 0:
            raise ValueError("merge radius must be positive")
        self.merge_radius = merge_radius
        self._sums: List[np.ndarray] = []
        self._counts: List[int] = []
        self.observations = 0

    def add(self, embedding: np.ndarray) -> int:
        """Assign the embedding to a cluster; returns the cluster index."""
        embedding = np.asarray(embedding, dtype=float)
        self.observations += 1
        for index in range(len(self._sums)):
            centroid = self._sums[index] / self._counts[index]
            if float(np.linalg.norm(centroid - embedding)) <= \
                    self.merge_radius:
                self._sums[index] = self._sums[index] + embedding
                self._counts[index] += 1
                return index
        self._sums.append(embedding.copy())
        self._counts.append(1)
        return len(self._sums) - 1

    def add_all(self, embeddings: Sequence[np.ndarray]) -> None:
        for embedding in embeddings:
            self.add(embedding)

    @property
    def unique_count(self) -> int:
        return len(self._sums)

    def cluster_sizes(self) -> List[int]:
        return list(self._counts)
