"""Continuous-learning modes (paper section 4.6, Fig 15).

A centralized backend can retrain recognition models with feedback from the
entire swarm instead of each device alone. Three modes:

- ``NONE``  — models ship pretrained and never improve.
- ``SELF``  — each device retrains only on its own decisions.
- ``SWARM`` — HiveMind: all devices' decisions retrain one global model,
  which then updates every device — convergence is roughly fleet-size times
  faster.

:class:`OnlineRecognizer` wires an :class:`~repro.learning.embeddings.
IdentitySpace` to per-device or shared :class:`~repro.learning.classifier.
NearestCentroidClassifier` instances. Pretraining uses a deliberately small
sample so the initial model has residual error; retraining folds in new
labeled observations, shrinking centroid-estimate error as 1/sqrt(n).
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, List, Optional

import numpy as np

from .accuracy import DetectionTally
from .classifier import NearestCentroidClassifier
from .embeddings import IdentitySpace

__all__ = ["RetrainingMode", "OnlineRecognizer"]


class RetrainingMode(Enum):
    NONE = "none"
    SELF = "self"
    SWARM = "swarm"


class OnlineRecognizer:
    """Recognition with optional per-device or swarm-wide retraining."""

    def __init__(self, space: IdentitySpace, device_ids: List[str],
                 mode: RetrainingMode,
                 rng: np.random.Generator,
                 sensor_noise: float = 0.45,
                 pretrain_noise: float = 0.6,
                 pretrain_samples: int = 2,
                 accept_radius: float = 0.8,
                 clutter_rate: float = 0.06):
        if not device_ids:
            raise ValueError("need at least one device")
        if not 0 <= clutter_rate < 1:
            raise ValueError("clutter rate must be in [0, 1)")
        self.space = space
        self.mode = mode
        self.rng = rng
        self.sensor_noise = sensor_noise
        self.clutter_rate = clutter_rate
        self.tally = DetectionTally()
        if mode is RetrainingMode.SWARM:
            shared = self._pretrained(pretrain_noise, pretrain_samples,
                                      accept_radius)
            self._models: Dict[str, NearestCentroidClassifier] = {
                device: shared for device in device_ids}
        else:
            self._models = {
                device: self._pretrained(pretrain_noise, pretrain_samples,
                                         accept_radius)
                for device in device_ids}

    def _pretrained(self, noise: float, samples: int,
                    accept_radius: float) -> NearestCentroidClassifier:
        """A model shipped with only a few noisy training examples."""
        model = NearestCentroidClassifier(self.space.dim, accept_radius)
        for identity in self.space.identities:
            for _ in range(samples):
                model.add_observation(
                    identity, self.space.observe(identity, noise))
        return model

    def model_of(self, device_id: str) -> NearestCentroidClassifier:
        model = self._models.get(device_id)
        if model is None:
            raise KeyError(f"unknown device {device_id!r}")
        return model

    def sight(self, device_id: str, identity: int) -> Optional[int]:
        """One device sighting of a true identity: classify and tally.

        With probability ``clutter_rate`` the sighting is background clutter
        instead; matching clutter to any identity is a false positive.
        Returns the predicted identity (or None).
        """
        model = self.model_of(device_id)
        if float(self.rng.random()) < self.clutter_rate:
            predicted = model.predict(self.space.confusable())
            if predicted is not None:
                self.tally.record_false_positive()
            else:
                self.tally.record_true_negative()
            return predicted
        embedding = self.space.observe(identity, self.sensor_noise)
        predicted = model.predict(embedding)
        if predicted == identity:
            self.tally.record_correct()
        elif predicted is None:
            self.tally.record_false_negative()
        else:
            self.tally.record_false_positive()
        if self.mode is not RetrainingMode.NONE:
            # Online feedback: the verified label retrains the model —
            # device-local in SELF, the shared model (hence every device)
            # in SWARM.
            model.add_observation(identity, embedding)
        return predicted

    def training_observations(self, device_id: str) -> int:
        """Total labeled observations backing one device's model."""
        model = self.model_of(device_id)
        return sum(model.observations_of(identity)
                   for identity in model.known_identities)
