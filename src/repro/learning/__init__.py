"""Learning substrate: embeddings, recognition, dedup, continuous learning."""

from .accuracy import DetectionTally
from .classifier import DeduplicationEngine, NearestCentroidClassifier
from .embeddings import IdentitySpace
from .retraining import OnlineRecognizer, RetrainingMode

__all__ = [
    "IdentitySpace",
    "NearestCentroidClassifier",
    "DeduplicationEngine",
    "DetectionTally",
    "RetrainingMode",
    "OnlineRecognizer",
]
