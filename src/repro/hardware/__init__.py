"""FPGA acceleration fabrics: area model, remote memory, RPC offload."""

from .fpga import FpgaFabric, FpgaRegion
from .reconfig import HardConfig, ReconfigController, SoftConfig
from .remote_memory import RemoteMemoryFabric, RemoteObject
from .rpc_accel import AcceleratedClusterRpc, AcceleratedEdgeRpc, RpcServerPool

__all__ = [
    "FpgaFabric",
    "FpgaRegion",
    "RemoteMemoryFabric",
    "RemoteObject",
    "AcceleratedClusterRpc",
    "AcceleratedEdgeRpc",
    "RpcServerPool",
    "ReconfigController",
    "HardConfig",
    "SoftConfig",
]
