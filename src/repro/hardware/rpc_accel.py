"""FPGA RPC offload (paper section 4.5).

The entire RPC stack runs on the FPGA NIC; the UPI interconnect exposes the
FPGA to the host as another NUMA node with zero-copy buffers. The paper
reports 2.1 us round trips between servers on the same ToR and 12.4 Mrps from
a single CPU core for 64 B RPCs — those two numbers anchor this model.

:class:`AcceleratedClusterRpc` mirrors :class:`~repro.network.rpc.
SoftwareClusterRpc`'s interface so the serverless layer can swap stacks.
:class:`AcceleratedEdgeRpc` applies the offload to edge-facing traffic: the
radio still bounds throughput (the FPGA cannot speed up air time), but all
host-side packet processing leaves the CPU, shrinking the per-call processing
and its latency variance — the "22 % lower latency on average" the car swarm
sees from network acceleration.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..config import AccelerationConstants
from ..network.rpc import EdgeCloudRpc, RpcResult
from ..network.wireless import WirelessNetwork
from ..sim import Environment, Resource

__all__ = ["AcceleratedClusterRpc", "AcceleratedEdgeRpc", "RpcServerPool"]


class RpcServerPool:
    """Throughput guard: one offload engine sustains ``mrps`` requests/s."""

    def __init__(self, env: Environment, mrps: float):
        if mrps <= 0:
            raise ValueError("throughput must be positive")
        self.env = env
        self.service_s = 1.0 / (mrps * 1e6)
        self._engine = Resource(env, capacity=1)

    def admit(self) -> Generator:
        """Process: occupy the engine for one request slot."""
        with self._engine.request() as grant:
            yield grant
            yield self.env.timeout(self.service_s)


class AcceleratedClusterRpc:
    """Server-to-server RPCs terminated on the FPGA NIC."""

    def __init__(self, env: Environment,
                 constants: Optional[AccelerationConstants] = None):
        self.env = env
        self.constants = constants or AccelerationConstants()
        self._pool = RpcServerPool(env, self.constants.accel_mrps)
        self.calls = 0

    @property
    def per_call_cpu_s(self) -> float:
        """Residual host-CPU cost per RPC (most is offloaded)."""
        return self.constants.residual_cpu_fraction * 2 * 45e-6

    def call(self, src: str, dst: str, request_mb: float,
             response_mb: float) -> Generator:
        """Process: accelerated request/response; returns RpcResult."""
        start = self.env.now
        yield from self._pool.admit()
        wire_s = (self.constants.accel_rtt_s +
                  (request_mb + response_mb) / self.constants.accel_bandwidth_mbs)
        if src != dst:
            yield self.env.timeout(wire_s)
        else:
            wire_s = 0.0
        self.calls += 1
        return RpcResult(
            total_s=self.env.now - start,
            wire_s=wire_s,
            processing_s=self.per_call_cpu_s,
            request_mb=request_mb,
            response_mb=response_mb,
        )


class AcceleratedEdgeRpc(EdgeCloudRpc):
    """Edge-facing RPCs with the cloud-side stack offloaded to the FPGA.

    Air time is unchanged (the wireless medium is shared exactly as in the
    software path), but the cloud endpoint's processing drops to the
    residual fraction and the NIC simply forwards packets to the FPGA.
    """

    def __init__(self, env: Environment, wireless: WirelessNetwork,
                 constants: Optional[AccelerationConstants] = None):
        super().__init__(env, wireless)
        self.constants = constants or AccelerationConstants()

    @property
    def _cloud_processing_s(self) -> float:
        return self.CLOUD_PROC_S * self.constants.residual_cpu_fraction

    def call(self, device_id: str, request_mb: float,
             response_mb: float, trace=None) -> Generator:
        start = self.env.now
        processing = (self.EDGE_PROC_S + self._cloud_processing_s +
                      self.PER_MB_MARSHAL_S * 0.25 *
                      (request_mb + response_mb))
        yield self.env.timeout(processing)
        if trace:
            trace.emit("rpc_processing", "network", start, self.env.now)
        wire_s = yield from self.wireless.round_trip(
            device_id, request_mb, response_mb, trace=trace)
        return RpcResult(
            total_s=self.env.now - start,
            wire_s=wire_s,
            processing_s=processing,
            request_mb=request_mb,
            response_mb=response_mb,
        )

    def push(self, device_id: str, megabytes: float,
             trace=None) -> Generator:
        start = self.env.now
        processing = (self.EDGE_PROC_S + self._cloud_processing_s +
                      self.PER_MB_MARSHAL_S * 0.25 * megabytes)
        yield self.env.timeout(processing)
        if trace:
            trace.emit("rpc_processing", "network", start, self.env.now)
        wire_s = yield from self.wireless.upload(device_id, megabytes,
                                                trace=trace)
        # Offload cannot remove the over-the-air ack round trip.
        rtt = self.wireless.constants.base_rtt_s
        ack_start = self.env.now
        yield self.env.timeout(rtt)
        if trace:
            trace.emit("ack_rtt", "network", ack_start, self.env.now)
        wire_s += rtt
        return RpcResult(
            total_s=processing + wire_s, wire_s=wire_s,
            processing_s=processing, request_mb=megabytes, response_mb=0.0)
