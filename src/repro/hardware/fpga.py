"""FPGA fabric model (paper sections 4.4-4.5).

Models the Arria 10 GX1150 attached to the host Xeon over the UPI memory
interconnect. The fabric is statically partitioned between the two
acceleration processes — remote memory access (18 % of LUTs) and RPC
offload (24 % of LUTs) — leaving headroom, exactly as the paper reports.
:class:`FpgaFabric` does the area accounting and owns the two engines'
reconfiguration state (see :mod:`repro.hardware.reconfig`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..config import AccelerationConstants

__all__ = ["FpgaRegion", "FpgaFabric"]


@dataclass
class FpgaRegion:
    """A statically allocated partition of the fabric."""

    name: str
    lut_count: int
    bitstream: str  # paper Fig 9: "blue" = RPC flow, "green" = networking


class FpgaFabric:
    """Area bookkeeping for one FPGA board."""

    def __init__(self, constants: AccelerationConstants = None):
        self.constants = constants or AccelerationConstants()
        self._regions: Dict[str, FpgaRegion] = {}
        self.allocate_region(
            "remote_memory",
            int(self.constants.lut_total *
                self.constants.remote_mem_lut_fraction),
            bitstream="blue")
        self.allocate_region(
            "rpc_offload",
            int(self.constants.lut_total * self.constants.rpc_lut_fraction),
            bitstream="green")

    def allocate_region(self, name: str, lut_count: int,
                        bitstream: str) -> FpgaRegion:
        if name in self._regions:
            raise ValueError(f"region {name!r} already allocated")
        if lut_count <= 0:
            raise ValueError("region must use at least one LUT")
        if self.used_luts + lut_count > self.constants.lut_total:
            raise ValueError(
                f"region {name!r} ({lut_count} LUTs) does not fit; "
                f"{self.free_luts} free")
        region = FpgaRegion(name, lut_count, bitstream)
        self._regions[name] = region
        return region

    def release_region(self, name: str) -> None:
        if name not in self._regions:
            raise KeyError(f"unknown region {name!r}")
        del self._regions[name]

    def region(self, name: str) -> FpgaRegion:
        found = self._regions.get(name)
        if found is None:
            raise KeyError(f"unknown region {name!r}")
        return found

    @property
    def used_luts(self) -> int:
        return sum(r.lut_count for r in self._regions.values())

    @property
    def free_luts(self) -> int:
        return self.constants.lut_total - self.used_luts

    @property
    def utilization(self) -> float:
        return self.used_luts / self.constants.lut_total

    def has_region(self, name: str) -> bool:
        return name in self._regions

    def repartition(self, env, name: str, lut_count: int):
        """Process: dynamically resize one region (paper section 4.5:
        "dynamic partitioning could be supported if needed").

        Resizing a region loads a new partial bitstream — a *hard*
        reconfiguration, seconds of downtime — so callers should treat
        this as a rare, coarse-grained control action. Returns the new
        region record.
        """
        region = self.region(name)
        if lut_count <= 0:
            raise ValueError("region must use at least one LUT")
        if self.used_luts - region.lut_count + lut_count > \
                self.constants.lut_total:
            raise ValueError(
                f"resize of {name!r} to {lut_count} LUTs does not fit")
        yield env.timeout(self.constants.hard_reconfig_s)
        self._regions[name] = FpgaRegion(name, lut_count, region.bitstream)
        return self._regions[name]
