"""FPGA reconfiguration control (paper section 4.5).

Reconfiguration is split in two tiers:

- **Hard** reconfiguration — coarse control decisions: the CPU-NIC interface
  protocol and the transport layer (TCP or UDP). Requires a (partial)
  bitstream load, seconds of downtime.
- **Soft** reconfiguration — soft register files accessible from the host
  over PCIe: CCI-P batch size, transmit/receive queue provisioning, queue
  number and size, number of active RPC flows, and the load-balancing
  scheme. Microseconds, done online per application.

:class:`ReconfigController` validates and times both, and keeps the current
configuration so the harness can assert what a deployment negotiated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from ..config import AccelerationConstants
from ..sim import Environment

__all__ = ["HardConfig", "SoftConfig", "ReconfigController"]

VALID_INTERFACES = ("ccip", "mmio")
VALID_TRANSPORTS = ("tcp", "udp")
VALID_LB_SCHEMES = ("round_robin", "flow_hash", "least_loaded")


@dataclass(frozen=True)
class HardConfig:
    """Coarse-grained fabric configuration (bitstream-level)."""

    interface: str = "ccip"
    transport: str = "tcp"

    def __post_init__(self):
        if self.interface not in VALID_INTERFACES:
            raise ValueError(f"unknown CPU-NIC interface {self.interface!r}")
        if self.transport not in VALID_TRANSPORTS:
            raise ValueError(f"unknown transport {self.transport!r}")


@dataclass(frozen=True)
class SoftConfig:
    """Register-file configuration, tunable online per application."""

    ccip_batch_size: int = 4
    tx_queues: int = 8
    rx_queues: int = 8
    queue_depth: int = 256
    active_rpc_flows: int = 64
    load_balance: str = "round_robin"

    def __post_init__(self):
        if self.ccip_batch_size <= 0:
            raise ValueError("batch size must be positive")
        if self.tx_queues <= 0 or self.rx_queues <= 0:
            raise ValueError("queue counts must be positive")
        if self.queue_depth <= 0:
            raise ValueError("queue depth must be positive")
        if self.active_rpc_flows <= 0:
            raise ValueError("active flows must be positive")
        if self.load_balance not in VALID_LB_SCHEMES:
            raise ValueError(f"unknown LB scheme {self.load_balance!r}")


class ReconfigController:
    """Applies hard/soft reconfigurations with their respective costs."""

    def __init__(self, env: Environment,
                 constants: Optional[AccelerationConstants] = None):
        self.env = env
        self.constants = constants or AccelerationConstants()
        self.hard = HardConfig()
        self.soft = SoftConfig()
        self.hard_reconfigs = 0
        self.soft_reconfigs = 0

    def apply_hard(self, config: HardConfig) -> Generator:
        """Process: load a new bitstream-level configuration."""
        if config != self.hard:
            yield self.env.timeout(self.constants.hard_reconfig_s)
            self.hard = config
            self.hard_reconfigs += 1
        return self.hard

    def apply_soft(self, config: SoftConfig) -> Generator:
        """Process: write the soft register file (online, microseconds)."""
        if config != self.soft:
            yield self.env.timeout(self.constants.soft_reconfig_s)
            self.soft = config
            self.soft_reconfigs += 1
        return self.soft

    def tune_for_payload(self, payload_mb: float) -> SoftConfig:
        """Pick buffer provisioning for an application's payload size.

        Buffer sizes are configured per application, online (section 4.5):
        small-RPC apps get many shallow queues and large batches; bulk apps
        get fewer, deeper queues.
        """
        if payload_mb < 0:
            raise ValueError("payload must be non-negative")
        if payload_mb < 0.01:
            return SoftConfig(ccip_batch_size=16, tx_queues=16, rx_queues=16,
                              queue_depth=128, active_rpc_flows=128,
                              load_balance="flow_hash")
        if payload_mb < 1.0:
            return SoftConfig(ccip_batch_size=8, tx_queues=8, rx_queues=8,
                              queue_depth=256, active_rpc_flows=64,
                              load_balance="round_robin")
        return SoftConfig(ccip_batch_size=2, tx_queues=4, rx_queues=4,
                          queue_depth=1024, active_rpc_flows=16,
                          load_balance="least_loaded")
