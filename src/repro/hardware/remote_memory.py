"""FPGA remote-memory fabric for inter-function data exchange (section 4.4).

When a child function cannot share its parent's container, HiveMind bypasses
CouchDB with an RDMA-over-Converged-Ethernet-style protocol terminated on the
FPGA and bridged to host memory over the UPI interconnect. Two properties
matter to the reproduction:

1. **Latency/bandwidth** — a read costs a few microseconds plus payload time
   at UPI-class bandwidth, orders of magnitude below CouchDB.
2. **Virtualized object addressing** — the child never learns the parent's
   physical location (preserving the serverless abstraction): it presents an
   object handle, and the fabric's address map (maintained with the
   centralized controller's placement knowledge) resolves it.

:class:`RemoteMemoryFabric` implements both: an object registry keyed by
opaque handles, and timed ``write``/``read`` coroutines.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Generator, Optional

from ..config import AccelerationConstants
from ..sim import Environment

__all__ = ["RemoteObject", "RemoteMemoryFabric"]


@dataclass(frozen=True)
class RemoteObject:
    """An object published into the remote-memory fabric."""

    handle: str
    size_mb: float
    home_server: str     # known to the fabric/controller, never to readers


class RemoteMemoryFabric:
    """Cluster-wide remote-memory service backed by per-server FPGAs."""

    def __init__(self, env: Environment,
                 constants: Optional[AccelerationConstants] = None):
        self.env = env
        self.constants = constants or AccelerationConstants()
        self._objects: Dict[str, RemoteObject] = {}
        self._handles = itertools.count()
        self.reads = 0
        self.writes = 0

    def _transfer_time(self, size_mb: float) -> float:
        return (self.constants.remote_mem_latency_s +
                size_mb / self.constants.remote_mem_mbs)

    def write(self, server_id: str, size_mb: float) -> Generator:
        """Process: publish an object from ``server_id``; returns a handle.

        The write placing the parent's output into a fabric-visible region
        costs one fabric transfer.
        """
        if size_mb < 0:
            raise ValueError("size must be non-negative")
        yield self.env.timeout(self._transfer_time(size_mb))
        handle = f"rmobj-{next(self._handles)}"
        self._objects[handle] = RemoteObject(handle, size_mb, server_id)
        self.writes += 1
        return handle

    def read(self, reader_server: str, handle: str) -> Generator:
        """Process: fetch an object by handle; returns its size in MB.

        A local read (reader on the object's home server) still crosses the
        UPI hop but skips the network leg — effectively the same cost at
        these magnitudes, so we charge one fabric transfer either way, which
        matches the paper's 'child sees a virtualized object location'
        framing.
        """
        obj = self._objects.get(handle)
        if obj is None:
            raise KeyError(f"unknown remote-memory handle {handle!r}")
        yield self.env.timeout(self._transfer_time(obj.size_mb))
        self.reads += 1
        return obj.size_mb

    def exists(self, handle: str) -> bool:
        return handle in self._objects

    def home_of(self, handle: str) -> str:
        """Controller-side lookup (section 4.4: physical placement is known
        by the centralized controller, not by the functions)."""
        obj = self._objects.get(handle)
        if obj is None:
            raise KeyError(f"unknown remote-memory handle {handle!r}")
        return obj.home_server

    def evict(self, handle: str) -> None:
        self._objects.pop(handle, None)

    @property
    def object_count(self) -> int:
        return len(self._objects)

    @property
    def resident_mb(self) -> float:
        return sum(o.size_mb for o in self._objects.values())
