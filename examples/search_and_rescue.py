"""Search-and-rescue with mid-mission drone failures.

The motivating use case from the paper's introduction: accounting for
objects/people in a field when devices are unreliable. A drone crashes
30 seconds into the mission; HiveMind's heartbeat detector notices within
3 s and repartitions the dead drone's region among its neighbours
(Fig 10), so the search still completes. The distributed platform has no
global view — the region goes unsearched.

Run:  python examples/search_and_rescue.py
"""

from repro.apps import SCENARIO_A
from repro.platforms import ScenarioRunner, platform_config

FAILED_DRONE = 5
FAIL_AT_S = 30.0


def fly(platform: str) -> None:
    result = ScenarioRunner(
        platform_config(platform), SCENARIO_A, seed=7,
        fail_device_at=(FAILED_DRONE, FAIL_AT_S)).run()
    print(f"\n[{platform}] drone{FAILED_DRONE:04d} fails at "
          f"t={FAIL_AT_S:.0f}s")
    print(f"  failed devices : {result.extras['failed_devices']}")
    print(f"  mission time   : {result.extras['makespan_s']:.1f} s")
    print(f"  items found    : {result.extras['items_found']}"
          f"/{result.extras['targets']}")
    print(f"  field covered  : {'yes' if result.completed else 'NO'}")


def main() -> None:
    print("=== Search and rescue: surviving a drone failure ===")
    fly("hivemind")          # repartitions, completes
    fly("distributed_edge")  # no global view: coverage hole


if __name__ == "__main__":
    main()
