"""Crowd monitoring: count unique moving people with deduplication.

Scenario B end-to-end: people wander the field, several drones photograph
the same person, and the cloud-side FaceNet-style embedding clustering
deduplicates the sightings into a unique count. Continuous learning is the
star: the same mission is flown with the recognition model never
retrained, retrained per device, and retrained swarm-wide (Fig 15).

Run:  python examples/crowd_monitoring.py
"""

from repro.apps import SCENARIO_B
from repro.platforms import ScenarioRunner, platform_config


def monitor(retraining: str) -> None:
    result = ScenarioRunner(
        platform_config("hivemind"), SCENARIO_B, seed=11,
        retraining=retraining, passes=3).run()
    tally = result.extras["tally"]
    correct, fn, fp = tally.as_row()
    print(f"\n[retraining={retraining}]")
    print(f"  unique people counted : {result.extras['unique_people']}"
          f" (ground truth {result.extras['targets']})")
    print(f"  recognition accuracy  : {correct:.1f}% correct, "
          f"{fn:.1f}% missed, {fp:.1f}% false alarms")
    print(f"  mission time          : {result.extras['makespan_s']:.1f} s")


def main() -> None:
    print("=== Crowd monitoring with continuous learning ===")
    for mode in ("none", "self", "swarm"):
        monitor(mode)
    print("\nSwarm-wide retraining converges fastest: every drone's "
          "verified detections\nimprove one shared model (section 4.6).")


if __name__ == "__main__":
    main()
