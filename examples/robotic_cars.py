"""Porting HiveMind to a different swarm: robotic cars (section 5.5).

Fourteen Raspberry-Pi cars run the Treasure Hunt (follow OCR'd instruction
panels to a target) and the Maze (wall-follower navigation) on three
platforms. Cars are far less power-constrained than drones, so the
interesting axis is job latency and its predictability.

Run:  python examples/robotic_cars.py
"""

from repro.apps import CAR_MAZE, TREASURE_HUNT
from repro.platforms import CarScenarioRunner, platform_config

PLATFORMS = ("centralized_faas", "distributed_edge", "hivemind")


def main() -> None:
    for scenario in (TREASURE_HUNT, CAR_MAZE):
        print(f"\n=== {scenario.name} ({scenario.description}) ===")
        for platform in PLATFORMS:
            result = CarScenarioRunner(
                platform_config(platform), scenario, seed=21).run()
            jobs = result.extras["job_latencies"]
            battery_mean, battery_worst = result.battery_summary()
            print(f"  {platform:20s} job median {jobs.median:7.1f} s | "
                  f"p99 {jobs.p99:7.1f} s | battery {battery_mean:5.2f}% "
                  f"(worst {battery_worst:5.2f}%) | perception on "
                  f"{result.extras['perception_tier']}")


if __name__ == "__main__":
    main()
