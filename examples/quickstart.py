"""Quickstart: compile an application with the HiveMind DSL and fly a
mission.

This walks the whole public surface in ~50 lines:

1. Express a task graph in the DSL (the paper's Listing 3 shape).
2. Let the compiler synthesize placements and pick an execution model.
3. Run the end-to-end Scenario A mission on the full HiveMind platform
   and on the centralized baseline, and compare.

Run:  python examples/quickstart.py
"""

from repro.apps import SCENARIO_A
from repro.dsl import HiveMindCompiler
from repro.platforms import ScenarioRunner, platform_config


def main() -> None:
    # -- 1. The application, as the user writes it -----------------------
    graph, directives = SCENARIO_A.dsl_graph()
    print(f"Task graph {graph.name!r}: {graph.task_names}")
    print(f"Edges: {graph.edges()}")

    # -- 2. Compile: synthesis + estimation + API generation -------------
    compiler = HiveMindCompiler(n_devices=16)
    compilation = compiler.compile(graph, directives)
    print(f"\n{len(compilation.plans)} meaningful execution models; "
          f"chosen: {compilation.placement}")
    estimate = compilation.chosen.estimate
    print(f"Predicted activation latency: {estimate.latency_s * 1000:.0f} ms,"
          f" network demand: {estimate.network_mbs:.0f} MB/s")
    print("Generated APIs:",
          compilation.chosen.apis.count_by_kind())

    # -- 3. Fly the mission on two platforms -----------------------------
    for platform in ("centralized_faas", "hivemind"):
        result = ScenarioRunner(platform_config(platform), SCENARIO_A,
                                seed=42).run()
        battery_mean, battery_worst = result.battery_summary()
        print(f"\n[{platform}]")
        print(f"  mission time : {result.extras['makespan_s']:.1f} s")
        print(f"  items found  : {result.extras['items_found']}"
              f"/{result.extras['targets']}")
        print(f"  battery used : {battery_mean:.1f}% mean, "
              f"{battery_worst:.1f}% worst drone")
        print(f"  completed    : {result.completed}")


if __name__ == "__main__":
    main()
