"""Scalability sweep: from the real 16-drone swarm toward thousands.

Reproduces the spirit of Fig 17b interactively: Scenario A is flown with
growing (simulated) swarms on HiveMind and on the centralized FaaS
baseline, printing mission time, wireless bandwidth, and where HiveMind's
runtime remapping starts pushing recognition batches on-board.

Run:  python examples/scalability_sweep.py [max_devices]
"""

import sys

from repro.apps import SCENARIO_A
from repro.platforms import ScenarioRunner, platform_config


def sweep(max_devices: int) -> None:
    sizes = [n for n in (16, 32, 64, 128, 256, 512, 1024)
             if n <= max_devices]
    print(f"{'devices':>8} | {'platform':18} | {'mission (s)':>11} | "
          f"{'wireless MB/s':>13} | {'cloud share':>11}")
    print("-" * 75)
    for n_devices in sizes:
        for platform in ("centralized_faas", "hivemind"):
            if platform == "centralized_faas" and n_devices > 256:
                continue  # the baseline gets painful to simulate past here
            result = ScenarioRunner(
                platform_config(platform), SCENARIO_A, seed=3,
                n_devices=n_devices).run()
            bandwidth, _ = result.bandwidth_summary()
            share = result.extras.get("cloud_fraction", 1.0)
            print(f"{n_devices:>8} | {platform:18} | "
                  f"{result.extras['makespan_s']:>11.1f} | "
                  f"{bandwidth:>13.1f} | {share:>10.0%}")
    print("\nHiveMind stays near-flat: once the swarm's recognition demand"
          "\nexceeds the reserved cloud budget, the runtime remaps overflow"
          "\nbatches on-board (section 4.2) instead of melting the backend.")


def main() -> None:
    max_devices = int(sys.argv[1]) if len(sys.argv) > 1 else 256
    sweep(max_devices)


if __name__ == "__main__":
    main()
