"""Authoring a brand-new application against the public API.

A wildfire-watch job that does not exist in the benchmark suite: drones
collect thermal imagery, an on-board hotspot filter discards cold frames,
a cloud CNN confirms fire signatures, and an alert aggregator fuses
confirmations across the swarm. The example shows the full developer
workflow: declare the graph, attach directives, validate, compile,
inspect every synthesized execution model and generated API, then run the
chosen plan's cloud stages directly on the serverless platform.

Run:  python examples/custom_application.py
"""

from repro.cluster import Cluster
from repro.config import DEFAULT
from repro.dsl import (
    DirectiveSet,
    ExecTimeConstraint,
    HiveMindCompiler,
    Learn,
    Persist,
    Place,
    Serial,
    Task,
    TaskGraph,
    TaskProfile,
    validate_graph,
)
from repro.serverless import FunctionSpec, InvocationRequest, OpenWhiskPlatform
from repro.sim import Environment, RandomStreams


def build_wildfire_watch() -> "tuple[TaskGraph, DirectiveSet]":
    graph = TaskGraph("wildfire_watch",
                      constraints=[ExecTimeConstraint(5.0)])
    graph.add_task(Task(
        "collectThermal", data_out="thermalFrames",
        code="tasks/collect_thermal.py",
        profile=TaskProfile(0.004, input_mb=8.0, output_mb=8.0,
                            edge_only=True),
        children=["hotspotFilter"]))
    graph.add_task(Task(
        "hotspotFilter", data_in="thermalFrames", data_out="candidates",
        code="tasks/hotspot_filter.py",
        profile=TaskProfile(0.03, input_mb=8.0, output_mb=1.5),
        parents=["collectThermal"], children=["fireConfirm"]))
    graph.add_task(Task(
        "fireConfirm", data_in="candidates", data_out="confirmations",
        code="tasks/fire_confirm.py",
        profile=TaskProfile(0.35, input_mb=1.5, output_mb=0.05,
                            parallelism=4),
        parents=["hotspotFilter"], children=["alertAggregate"]))
    graph.add_task(Task(
        "alertAggregate", data_in="confirmations", data_out="alerts",
        code="tasks/alert_aggregate.py",
        profile=TaskProfile(0.08, input_mb=0.05, output_mb=0.01,
                            cloud_only=True),
        parents=["fireConfirm"]))
    directives = DirectiveSet()
    Place(directives, graph, "hotspotFilter", "Edge:all")
    Serial(graph, "fireConfirm", "alertAggregate")
    Learn(directives, graph, "fireConfirm", "Global")
    Persist(directives, graph, "alertAggregate")
    return graph, directives


def main() -> None:
    graph, directives = build_wildfire_watch()
    warnings = validate_graph(graph, directives)
    print(f"Graph {graph.name!r} validated "
          f"({'no warnings' if not warnings else warnings})")

    compilation = HiveMindCompiler(n_devices=16).compile(graph, directives)
    print(f"\nSynthesized {len(compilation.plans)} execution models:")
    for plan in compilation.plans:
        marker = " <== chosen" if plan is compilation.chosen else ""
        print(f"  {plan.placement}  "
              f"(predicted {plan.estimate.latency_s * 1000:.0f} ms, "
              f"{plan.estimate.network_mbs:.0f} MB/s){marker}")

    bundle = compilation.chosen.apis
    print(f"\nGenerated APIs: {bundle.count_by_kind()}")
    crossing = bundle.artifact_for("hotspotFilter", "fireConfirm")
    print(f"--- {crossing.kind} ({crossing.language}) "
          f"hotspotFilter -> fireConfirm ---")
    print("\n".join(crossing.source.splitlines()[:10]))

    # Run the cloud stages of the chosen plan on the serverless platform.
    env = Environment()
    platform = OpenWhiskPlatform(
        env, Cluster(env, DEFAULT.cluster), RandomStreams(3),
        scheduler="hivemind", keepalive_s=20.0)

    def one_activation():
        confirm = yield env.process(platform.invoke(InvocationRequest(
            spec=FunctionSpec("fire-confirm", image="fire-confirm"),
            service_s=0.35, input_mb=1.5, output_mb=0.05)))
        alert = yield env.process(platform.invoke(InvocationRequest(
            spec=FunctionSpec("alert-aggregate", image="fire-confirm"),
            service_s=0.08, parent=confirm)))
        return confirm, alert

    confirm, alert = env.run(env.process(one_activation()))
    print(f"\nOne cloud activation: fireConfirm {confirm.latency_s * 1000:.0f}"
          f" ms -> alertAggregate {alert.latency_s * 1000:.0f} ms "
          f"(colocated={alert.colocated})")


if __name__ == "__main__":
    main()
